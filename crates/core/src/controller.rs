//! The dynamic CPA controller: ties profiling, selection and enforcement
//! together at every interval boundary.

use crate::config::{CpaConfig, EnforcementStyle, Objective, Selector};
use crate::enforce::{build_clustered_enforcement, equal_allocation};
use crate::minmisses::{fairness_minimax, min_misses_dp, min_misses_greedy};
use crate::profiler::{Profiler, ProfilerState};
use cachesim::{Addr, CacheError, CacheGeometry, Enforcement};

/// Dynamic cache-partitioning controller for one shared L2.
///
/// Usage protocol (driven by the CMP simulator):
///
/// 1. install [`CpaController::initial_enforcement`] on the L2;
/// 2. call [`CpaController::observe`] for **every** L2 access (the
///    controller's per-thread ATDs sample internally);
/// 3. at every `interval_cycles` boundary call
///    [`CpaController::on_interval`] and install the returned enforcement.
///
/// ## Many-core clustering
///
/// When more cores share the L2 than it has ways (64-256 tenants on a
/// 16/32-way cache), no partition can give every core a private way.
/// The controller then groups cores round-robin into
/// `clusters = min(num_cores, assoc)` clusters: each core keeps its own
/// profiling ATD, per-cluster miss curves are the elementwise sum of
/// the members' curves, MinMisses partitions between *clusters*, and
/// mask enforcement hands every member the cluster's mask. Owner
/// counters cannot express shared quotas, so `C-*` schemes reject the
/// many-core case at construction with a one-line error
/// ([`CpaController::try_new`]).
///
/// ```
/// use cachesim::CacheGeometry;
/// use plru_core::{CpaConfig, CpaController};
///
/// // M-0.75N on the paper's 2 MB / 16-way L2, two threads.
/// let geom = CacheGeometry::new(2 * 1024 * 1024, 16, 128).unwrap();
/// let mut ctl = CpaController::new(CpaConfig::m_nru(0.75), geom, 2);
/// let _initial = ctl.initial_enforcement(); // equal split to start
///
/// // Thread 0 streams, thread 1 re-touches a small working set.
/// for i in 0..20_000u64 {
///     ctl.observe(0, i * 128);
///     ctl.observe(1, (i % 64) * 128);
/// }
/// let _enforcement = ctl.on_interval(); // install on the L2
/// assert_eq!(ctl.allocation().len(), 2);
/// assert_eq!(ctl.allocation().iter().sum::<usize>(), 16);
/// ```
#[derive(Debug, Clone)]
pub struct CpaController {
    config: CpaConfig,
    assoc: usize,
    /// Partitioned entities: the core count at paper scale, `assoc / 2`
    /// when more cores than ways share the cache.
    clusters: usize,
    profilers: Vec<ProfilerState>,
    /// Ways per cluster.
    allocation: Vec<usize>,
    /// Allocation decided at each interval boundary (for analysis).
    history: Vec<Vec<usize>>,
    intervals: u64,
}

impl CpaController {
    /// Build a controller for `num_cores` threads sharing an L2 of shape
    /// `geom`. Panics on invalid combinations; the validated path is
    /// [`Self::try_new`].
    pub fn new(config: CpaConfig, geom: CacheGeometry, num_cores: usize) -> Self {
        Self::try_new(config, geom, num_cores).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Build a controller, surfacing invalid combinations (zero cores,
    /// owner counters with more cores than ways, a sample ratio leaving
    /// no sampled set, an unsupported sketch fingerprint width) as
    /// one-line errors config parsing can report.
    pub fn try_new(
        config: CpaConfig,
        geom: CacheGeometry,
        num_cores: usize,
    ) -> Result<Self, CacheError> {
        if num_cores < 1 {
            return Err(CacheError::BadPartition {
                reason: "a partitioned cache needs at least one core".into(),
            });
        }
        let clusters = if num_cores <= geom.assoc() {
            num_cores
        } else {
            // Half the ways, so the per-cluster MinMisses DP (>= 1 way
            // each, summing to assoc) is not forced into all-ones.
            (geom.assoc() / 2).max(1)
        };
        if clusters < num_cores && config.enforcement == EnforcementStyle::OwnerCounters {
            return Err(CacheError::BadPartition {
                reason: format!(
                    "owner-counter enforcement needs one quota way per core: \
                     {num_cores} cores exceed {} ways (use an M-* scheme)",
                    geom.assoc()
                ),
            });
        }
        let profilers = (0..num_cores)
            .map(|_| {
                ProfilerState::try_new(
                    config.policy,
                    geom,
                    config.sample_ratio,
                    config.nru_scale,
                    config.nru_update,
                    config.fidelity(),
                )
            })
            .collect::<Result<Vec<_>, _>>()?;
        let allocation = equal_allocation(clusters, geom.assoc());
        Ok(CpaController {
            assoc: geom.assoc(),
            clusters,
            profilers,
            allocation,
            history: Vec::new(),
            intervals: 0,
            config,
        })
    }

    /// Number of partitioned clusters (`num_cores` at paper scale,
    /// `assoc / 2` at many-core scale).
    pub fn clusters(&self) -> usize {
        self.clusters
    }

    /// The cluster a core belongs to.
    #[inline]
    pub fn cluster_of(&self, core: usize) -> usize {
        core % self.clusters
    }

    /// The configuration acronym (e.g. `M-0.75N`).
    pub fn acronym(&self) -> String {
        self.config.acronym()
    }

    /// The configuration.
    pub fn config(&self) -> &CpaConfig {
        &self.config
    }

    /// Repartition interval in cycles.
    pub fn interval_cycles(&self) -> u64 {
        self.config.interval_cycles
    }

    /// The enforcement for the starting equal split.
    pub fn initial_enforcement(&self) -> Enforcement {
        build_clustered_enforcement(&self.config, &self.allocation, self.assoc, self.num_cores())
            .expect("equal split is always enforceable")
    }

    /// Number of cores (= profilers) this controller serves.
    pub fn num_cores(&self) -> usize {
        self.profilers.len()
    }

    /// Feed one L2 access of `core` into its profiler.
    #[inline]
    pub fn observe(&mut self, core: usize, addr: Addr) {
        self.profilers[core].observe(addr);
    }

    /// Interval boundary: read the (e)SDHs, select a new partition with
    /// MinMisses, decay the SDHs, and return the enforcement to install.
    ///
    /// If the histograms hold fewer than `min_samples_per_thread` samples
    /// per thread on average, the current partition is kept (and the SDHs
    /// are left to accumulate) — repartitioning off a cold histogram is
    /// pure noise.
    pub fn on_interval(&mut self) -> Enforcement {
        self.on_interval_with_feedback(None)
    }

    /// Interval boundary with optional miss feedback: `observed_misses[c]`
    /// is the number of L2 misses core `c` actually suffered since the
    /// last boundary. With `adaptive_nru_scale` enabled, the NRU profilers
    /// compare their prediction at the installed allocation against the
    /// observation and nudge their scaling factor accordingly — the
    /// estimation-accuracy extension the paper leaves as future work.
    pub fn on_interval_with_feedback(&mut self, observed_misses: Option<&[u64]>) -> Enforcement {
        let total: u64 = self.profilers.iter().map(|p| p.sdh().total()).sum();
        let warm = total >= self.config.min_samples_per_thread * self.profilers.len() as u64;
        if warm {
            if self.config.adaptive_nru_scale {
                if let Some(observed) = observed_misses {
                    self.adapt_nru_scales(observed);
                }
            }
            // Per-cluster curves: at paper scale one curve per core; at
            // many-core scale the elementwise sum of the members' curves
            // (the cluster's demand as one aggregate tenant).
            let curves: Vec<Vec<u64>> = if self.clusters == self.profilers.len() {
                self.profilers
                    .iter()
                    .map(|p| p.sdh().miss_curve())
                    .collect()
            } else {
                let mut sums = vec![vec![0u64; self.assoc + 1]; self.clusters];
                for (c, p) in self.profilers.iter().enumerate() {
                    let curve = p.sdh().miss_curve();
                    for (acc, v) in sums[c % self.clusters].iter_mut().zip(curve) {
                        *acc += v;
                    }
                }
                sums
            };
            self.allocation = match self.config.objective {
                Objective::Fairness => fairness_minimax(&curves, self.assoc),
                Objective::MinMisses => match self.config.selector {
                    Selector::ExactDp => min_misses_dp(&curves, self.assoc),
                    Selector::Greedy => min_misses_greedy(&curves, self.assoc),
                },
            };
            for p in &mut self.profilers {
                p.decay();
            }
        }
        self.intervals += 1;
        self.history.push(self.allocation.clone());
        build_clustered_enforcement(&self.config, &self.allocation, self.assoc, self.num_cores())
            .expect("MinMisses allocations are always enforceable")
    }

    /// One feedback step of the adaptive scaling factor: predicted misses
    /// at the installed allocation (ATD counts x sampling ratio) vs
    /// observed misses. Predicting too few misses means the distance
    /// estimates are too small -> raise `S`; too many -> lower it.
    fn adapt_nru_scales(&mut self, observed_misses: &[u64]) {
        const STEP: f64 = 0.05;
        const DEADBAND: f64 = 0.15;
        let ratio = self.config.sample_ratio as f64;
        let clusters = self.clusters;
        for (c, p) in self.profilers.iter_mut().enumerate() {
            let alloc = self.allocation[c % clusters];
            let predicted = p.sdh().misses_with_ways(alloc) as f64 * ratio;
            let observed = observed_misses.get(c).copied().unwrap_or(0) as f64;
            if observed < 1.0 || predicted < 1.0 {
                continue;
            }
            let Some(nru) = p.as_nru_mut() else { return };
            let err = predicted / observed;
            if err < 1.0 - DEADBAND {
                nru.set_scale(nru.scale() + STEP);
            } else if err > 1.0 + DEADBAND {
                nru.set_scale(nru.scale() - STEP);
            }
        }
    }

    /// The most recent allocation: ways per cluster (= per thread
    /// whenever `num_cores <= assoc`).
    pub fn allocation(&self) -> &[usize] {
        &self.allocation
    }

    /// All allocations decided so far.
    pub fn history(&self) -> &[Vec<usize>] {
        &self.history
    }

    /// Number of interval boundaries processed.
    pub fn intervals(&self) -> u64 {
        self.intervals
    }

    /// The per-thread profilers (for inspection).
    pub fn profilers(&self) -> &[ProfilerState] {
        &self.profilers
    }

    /// Current NRU scaling factors per thread (None entries for non-NRU
    /// configurations).
    pub fn nru_scales(&self) -> Vec<Option<f64>> {
        self.profilers.iter().map(|p| p.nru_scale()).collect()
    }

    /// Total ATD probes across threads (for the power model).
    pub fn total_observed(&self) -> u64 {
        self.profilers.iter().map(|p| p.observed()).sum()
    }

    /// Reset profilers and return to the equal split.
    pub fn reset(&mut self) {
        for p in &mut self.profilers {
            p.reset();
        }
        self.allocation = equal_allocation(self.clusters, self.assoc);
        self.history.clear();
        self.intervals = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cachesim::PolicyKind;

    fn geom() -> CacheGeometry {
        CacheGeometry::new(2 * 1024 * 1024, 16, 128).unwrap()
    }

    /// Byte address of the n-th line in sampled set 0.
    fn sampled_addr(n: u64) -> Addr {
        (n << 10) << 7
    }

    #[test]
    fn initial_enforcement_is_equal_split() {
        let c = CpaController::new(CpaConfig::m_l(), geom(), 2);
        assert_eq!(c.allocation(), &[8, 8]);
        match c.initial_enforcement() {
            Enforcement::Masks(masks) => {
                assert_eq!(masks[0].count(), 8);
                assert_eq!(masks[1].count(), 8);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn interval_reallocates_toward_the_needier_thread() {
        let mut c = CpaController::new(CpaConfig::m_l(), geom(), 2);
        // Thread 0 cycles through 12 lines of a sampled set (needs 12
        // ways); thread 1 hammers 1 line (needs 1 way).
        for _ in 0..200 {
            for n in 0..12 {
                c.observe(0, sampled_addr(n));
            }
            c.observe(1, sampled_addr(100));
        }
        c.on_interval();
        let alloc = c.allocation();
        assert!(
            alloc[0] >= 12,
            "thread 0 should receive its working set: {alloc:?}"
        );
        assert_eq!(alloc.iter().sum::<usize>(), 16);
    }

    #[test]
    fn works_for_all_paper_configs() {
        for cfg in CpaConfig::figure7_set() {
            let mut c = CpaController::new(cfg.clone(), geom(), 4);
            for i in 0..400u64 {
                c.observe((i % 4) as usize, sampled_addr(i % 10));
            }
            let e = c.on_interval();
            assert!(e.is_partitioned(), "{}", cfg.acronym());
            assert_eq!(c.allocation().iter().sum::<usize>(), 16);
            assert!(c.allocation().iter().all(|&w| w >= 1));
        }
    }

    #[test]
    fn bt_strict_mode_emits_vector_enforcement() {
        let mut cfg = CpaConfig::m_bt();
        cfg.bt_strict_vectors = true;
        let mut c = CpaController::new(cfg, geom(), 2);
        for n in 0..6 {
            c.observe(0, sampled_addr(n));
        }
        let e = c.on_interval();
        assert!(matches!(e, Enforcement::BtVectors { .. }));
        assert_eq!(c.config().policy, PolicyKind::Bt);
    }

    #[test]
    fn history_and_interval_counting() {
        let mut c = CpaController::new(CpaConfig::c_l(), geom(), 2);
        c.on_interval();
        c.on_interval();
        assert_eq!(c.intervals(), 2);
        assert_eq!(c.history().len(), 2);
    }

    #[test]
    fn decay_happens_each_interval() {
        let mut c = CpaController::new(CpaConfig::m_l(), geom(), 2);
        for _ in 0..64 {
            c.observe(0, sampled_addr(0));
        }
        let before = c.profilers()[0].sdh().total();
        c.on_interval();
        let after = c.profilers()[0].sdh().total();
        assert!(
            after <= before / 2 + 1,
            "decay must halve ({before} -> {after})"
        );
    }

    #[test]
    fn reset_restores_equal_split() {
        let mut c = CpaController::new(CpaConfig::m_l(), geom(), 2);
        for _ in 0..100 {
            for n in 0..12 {
                c.observe(0, sampled_addr(n));
            }
        }
        c.on_interval();
        c.reset();
        assert_eq!(c.allocation(), &[8, 8]);
        assert_eq!(c.intervals(), 0);
        assert_eq!(c.total_observed(), 0);
    }

    #[test]
    fn fairness_objective_balances_identical_threads() {
        use crate::config::Objective;
        let mut cfg = CpaConfig::m_l();
        cfg.objective = Objective::Fairness;
        let mut c = CpaController::new(cfg, geom(), 2);
        // Identical pressure from both threads, working sets of 6 ways
        // each (both fit in 16 ways together).
        for _ in 0..100 {
            for n in 0..6 {
                c.observe(0, sampled_addr(n));
                c.observe(1, sampled_addr(100 + n));
            }
        }
        c.on_interval();
        let alloc = c.allocation();
        assert!(
            alloc[0] >= 6 && alloc[1] >= 6,
            "fairness must cover both working sets: {alloc:?}"
        );
    }

    #[test]
    fn adaptive_scale_moves_toward_observed_misses() {
        let mut cfg = CpaConfig::m_nru(0.75);
        cfg.adaptive_nru_scale = true;
        cfg.min_samples_per_thread = 1;
        let mut c = CpaController::new(cfg, geom(), 2);
        for _ in 0..100 {
            for n in 0..6 {
                c.observe(0, sampled_addr(n));
                c.observe(1, sampled_addr(100 + n));
            }
        }
        let before = c.nru_scales()[0].unwrap();
        // Report far more observed misses than predicted: scales rise.
        c.on_interval_with_feedback(Some(&[1_000_000, 1_000_000]));
        let after = c.nru_scales()[0].unwrap();
        assert!(after > before, "scale should rise: {before} -> {after}");
        // Now report (effectively) fewer misses than predicted: it falls.
        for _ in 0..100 {
            for n in 0..6 {
                c.observe(0, sampled_addr(n));
                c.observe(1, sampled_addr(100 + n));
            }
        }
        c.on_interval_with_feedback(Some(&[1, 1]));
        let third = c.nru_scales()[0].unwrap();
        assert!(third < after, "scale should fall: {after} -> {third}");
    }

    #[test]
    fn non_adaptive_config_keeps_its_scale() {
        let cfg = CpaConfig::m_nru(0.75);
        let mut c = CpaController::new(cfg, geom(), 2);
        for _ in 0..100 {
            for n in 0..6 {
                c.observe(0, sampled_addr(n));
            }
        }
        c.on_interval_with_feedback(Some(&[999_999, 999_999]));
        assert_eq!(c.nru_scales()[0], Some(0.75));
    }

    #[test]
    fn owner_counters_reject_more_cores_than_ways_with_one_line_error() {
        let err = CpaController::try_new(CpaConfig::c_l(), geom(), 64).unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("use an M-* scheme"), "unexpected error: {msg}");
        assert!(!msg.contains('\n'), "error must be one line");
    }

    #[test]
    fn masks_cluster_more_cores_than_ways() {
        // 64 cores on 16 ways: 8 clusters of 8 cores each.
        let mut c = CpaController::try_new(CpaConfig::m_l(), geom(), 64).unwrap();
        assert_eq!(c.clusters(), 8);
        assert_eq!(c.num_cores(), 64);
        assert_eq!(c.allocation().len(), 8);
        assert_eq!(c.allocation().iter().sum::<usize>(), 16);
        match c.initial_enforcement() {
            Enforcement::Masks(masks) => {
                assert_eq!(masks.len(), 64);
                assert_eq!(masks[0], masks[8], "cores 0/8 share cluster 0");
            }
            other => panic!("unexpected {other:?}"),
        }
        // Cluster 0's members (cores 0, 8, 16, 24) each loop a 5-line
        // working set; everyone else touches one line. Cluster 0 should
        // win ways (5 <= the 9 ways reachable once the 7 one-line
        // clusters keep their single way).
        for _ in 0..100 {
            for m in 0..4 {
                for n in 0..5 {
                    c.observe(m * 8, sampled_addr(n));
                }
            }
            for core in 1..8 {
                c.observe(core, sampled_addr(100));
            }
        }
        let e = c.on_interval();
        assert!(e.is_partitioned());
        let alloc = c.allocation();
        assert_eq!(alloc.iter().sum::<usize>(), 16);
        assert!(
            alloc[0] > 2,
            "the demanding cluster should grow past its equal share: {alloc:?}"
        );
    }

    #[test]
    fn sketch_fidelity_flows_through_the_controller() {
        use crate::sketch::ProfilerFidelity;
        let mut cfg = CpaConfig::m_l();
        cfg.fidelity = Some(ProfilerFidelity::Sketch { fp_bits: 12 });
        let c = CpaController::try_new(cfg, geom(), 2).unwrap();
        assert_eq!(
            c.profilers()[0].fidelity(),
            ProfilerFidelity::Sketch { fp_bits: 12 }
        );
        let mut bad = CpaConfig::m_l();
        bad.fidelity = Some(ProfilerFidelity::Sketch { fp_bits: 9 });
        let err = CpaController::try_new(bad, geom(), 2).unwrap_err();
        assert!(err.to_string().contains("8, 12 or 16"));
    }
}
