//! The three profiling logics: exact SDH under LRU, and the paper's two
//! estimated-SDH (eSDH) proposals for NRU and BT.
//!
//! Every profiler owns a sampled tag store ([`TagStoreState`]: exact
//! [`crate::atd::AtdTags`] or the cuckoo-filter [`crate::sketch::SketchAtd`],
//! per the scheme's [`ProfilerFidelity`]) plus the replacement metadata
//! of its policy, and feeds one [`Sdh`]. The ATD always runs the *same*
//! replacement policy as the L2 (the paper applies NRU/BT "to both the L2
//! cache and ATDs") and is never partitioned — it models the thread running
//! alone with the whole cache.

use crate::config::NruUpdateMode;
use crate::sdh::Sdh;
use crate::sketch::{ProfilerFidelity, TagStore, TagStoreState};
use cachesim::policy::{Bt, Lru, Nru};
use cachesim::{Addr, CacheError, CacheGeometry, PolicyKind, WayMask};

/// Common interface of the three profiling logics.
pub trait Profiler {
    /// Observe one L2 access of the owning thread (the profiler decides
    /// internally whether the set is sampled).
    fn observe(&mut self, addr: Addr);

    /// The thread's (e)SDH.
    fn sdh(&self) -> &Sdh;

    /// Interval-boundary decay (halve the SDH registers).
    fn decay(&mut self);

    /// Clear ATD content and SDH.
    fn reset(&mut self);

    /// Accesses that actually probed the ATD (sampled-set hits+misses).
    fn observed(&self) -> u64;
}

// ---------------------------------------------------------------------
// LRU: exact stack distances (the classical Mattson/Qureshi profiler).
// ---------------------------------------------------------------------

/// Exact SDH profiler for true LRU (Section II-A).
#[derive(Debug, Clone)]
pub struct LruProfiler {
    tags: TagStoreState,
    lru: Lru,
    sdh: Sdh,
    observed: u64,
    full: WayMask,
}

impl LruProfiler {
    /// Build for an L2 of shape `geom`, sampling 1 in `sample_ratio` sets,
    /// with the exact tag store. Panics on an invalid shape; the validated
    /// path is [`Self::try_new`].
    pub fn new(geom: CacheGeometry, sample_ratio: usize) -> Self {
        Self::try_new(geom, sample_ratio, ProfilerFidelity::Exact).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Build with an explicit tag-store fidelity, surfacing shape errors
    /// as one-line values.
    pub fn try_new(
        geom: CacheGeometry,
        sample_ratio: usize,
        fidelity: ProfilerFidelity,
    ) -> Result<Self, CacheError> {
        let tags = TagStoreState::try_new(geom, sample_ratio, fidelity)?;
        Ok(LruProfiler {
            lru: Lru::new(tags.sampled_sets(), geom.assoc()),
            sdh: Sdh::new(geom.assoc()),
            observed: 0,
            full: WayMask::full(geom.assoc()),
            tags,
        })
    }

    /// The tag store backing this profiler's ATD.
    pub fn tags(&self) -> &TagStoreState {
        &self.tags
    }
}

impl Profiler for LruProfiler {
    fn observe(&mut self, addr: Addr) {
        let Some(aset) = self.tags.sampled_set(addr) else {
            return;
        };
        self.observed += 1;
        let tag = self.tags.tag(addr);
        match self.tags.lookup(aset, tag) {
            Some(way) => {
                // Exact stack position, read before promotion.
                self.sdh.record(self.lru.stack_position(aset, way));
                self.lru.on_access(aset, way);
            }
            None => {
                self.sdh.record_miss();
                let way = self
                    .tags
                    .invalid_way(aset)
                    .unwrap_or_else(|| self.lru.victim(aset, self.full));
                self.tags.fill(aset, way, tag);
                self.lru.on_access(aset, way);
            }
        }
    }

    fn sdh(&self) -> &Sdh {
        &self.sdh
    }

    fn decay(&mut self) {
        self.sdh.decay();
    }

    fn reset(&mut self) {
        self.tags.reset();
        self.lru.reset();
        self.sdh.reset();
        self.observed = 0;
    }

    fn observed(&self) -> u64 {
        self.observed
    }
}

// ---------------------------------------------------------------------
// NRU: estimated SDH from used-bit counts (Section III-A).
// ---------------------------------------------------------------------

/// eSDH profiler for NRU.
///
/// On a hit whose used bit is already 1 the true stack distance lies in
/// `[1, U]` (`U` = number of set used bits, including the accessed line);
/// the profiler assumes `ceil(S * U)` with scaling factor `S`. On a hit
/// whose used bit is 0 the distance lies in `[U+1, A]`; the paper leaves
/// the SDH unchanged ("increasing all of them does not change the shape of
/// the miss curve"). ATD misses increment `r_{A+1}` as usual.
#[derive(Debug, Clone)]
pub struct NruProfiler {
    tags: TagStoreState,
    nru: Nru,
    sdh: Sdh,
    scale: f64,
    mode: NruUpdateMode,
    observed: u64,
    full: WayMask,
}

impl NruProfiler {
    /// Build with eSDH scaling factor `scale` (the paper evaluates 1.0,
    /// 0.75, 0.5) and the given hit-update mode, on the exact tag store.
    /// Panics on an invalid shape; the validated path is [`Self::try_new`].
    pub fn new(geom: CacheGeometry, sample_ratio: usize, scale: f64, mode: NruUpdateMode) -> Self {
        Self::try_new(geom, sample_ratio, scale, mode, ProfilerFidelity::Exact)
            .unwrap_or_else(|e| panic!("{e}"))
    }

    /// Build with an explicit tag-store fidelity, surfacing shape errors
    /// as one-line values.
    pub fn try_new(
        geom: CacheGeometry,
        sample_ratio: usize,
        scale: f64,
        mode: NruUpdateMode,
        fidelity: ProfilerFidelity,
    ) -> Result<Self, CacheError> {
        assert!(scale > 0.0 && scale <= 1.0);
        let tags = TagStoreState::try_new(geom, sample_ratio, fidelity)?;
        Ok(NruProfiler {
            nru: Nru::new(tags.sampled_sets(), geom.assoc()),
            sdh: Sdh::new(geom.assoc()),
            scale,
            mode,
            observed: 0,
            full: WayMask::full(geom.assoc()),
            tags,
        })
    }

    /// The tag store backing this profiler's ATD.
    pub fn tags(&self) -> &TagStoreState {
        &self.tags
    }

    /// The estimated distance for a used-bit hit given `U` set bits:
    /// `ceil(S * U)`, clamped to at least 1 ("if S×U does not result in an
    /// integer number, we select the closest upper integer").
    #[inline]
    pub fn scaled_distance(&self, u: usize) -> usize {
        ((self.scale * u as f64).ceil() as usize).max(1)
    }

    /// The current scaling factor.
    pub fn scale(&self) -> f64 {
        self.scale
    }

    /// Update the scaling factor (used by the adaptive-scale extension);
    /// clamped to `(0, 1]`.
    pub fn set_scale(&mut self, scale: f64) {
        self.scale = scale.clamp(0.05, 1.0);
    }
}

impl Profiler for NruProfiler {
    fn observe(&mut self, addr: Addr) {
        let Some(aset) = self.tags.sampled_set(addr) else {
            return;
        };
        self.observed += 1;
        let tag = self.tags.tag(addr);
        match self.tags.lookup(aset, tag) {
            Some(way) => {
                if self.nru.is_used(aset, way) {
                    // Distance within [1, U]: estimate ceil(S*U).
                    let u = self.nru.used_count(aset);
                    match self.mode {
                        NruUpdateMode::Scaled => self.sdh.record(self.scaled_distance(u)),
                        NruUpdateMode::Smear => {
                            for d in 1..=u {
                                self.sdh.record(d);
                            }
                        }
                    }
                }
                // Used bit 0: distance within [U+1, A] — no SDH update.
                self.nru.on_access(aset, way, self.full);
            }
            None => {
                self.sdh.record_miss();
                let way = self
                    .tags
                    .invalid_way(aset)
                    .unwrap_or_else(|| self.nru.victim(aset, self.full));
                self.tags.fill(aset, way, tag);
                self.nru.on_access(aset, way, self.full);
            }
        }
    }

    fn sdh(&self) -> &Sdh {
        &self.sdh
    }

    fn decay(&mut self) {
        self.sdh.decay();
    }

    fn reset(&mut self) {
        self.tags.reset();
        self.nru.reset();
        self.sdh.reset();
        self.observed = 0;
    }

    fn observed(&self) -> u64 {
        self.observed
    }
}

// ---------------------------------------------------------------------
// BT: estimated SDH from identifier-bit XOR (Section III-B).
// ---------------------------------------------------------------------

/// eSDH profiler for Binary-Tree pseudo-LRU.
///
/// For the accessed way `w` the decoder derives the identifier bits (the
/// path-bit values that would make `w` the pseudo-LRU victim — numerically
/// just `w`'s index bits, Figure 4(c)). The estimated stack position is
/// `A - (path_bits XOR ID)` (Figure 4(b)): 1 when the line was just
/// accessed, `A` when it is the current victim.
#[derive(Debug, Clone)]
pub struct BtProfiler {
    tags: TagStoreState,
    bt: Bt,
    sdh: Sdh,
    observed: u64,
}

impl BtProfiler {
    /// Build for an L2 of shape `geom` (power-of-two associativity) on
    /// the exact tag store. Panics on an invalid shape; the validated
    /// path is [`Self::try_new`].
    pub fn new(geom: CacheGeometry, sample_ratio: usize) -> Self {
        Self::try_new(geom, sample_ratio, ProfilerFidelity::Exact).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Build with an explicit tag-store fidelity, surfacing shape errors
    /// as one-line values.
    pub fn try_new(
        geom: CacheGeometry,
        sample_ratio: usize,
        fidelity: ProfilerFidelity,
    ) -> Result<Self, CacheError> {
        let tags = TagStoreState::try_new(geom, sample_ratio, fidelity)?;
        Ok(BtProfiler {
            bt: Bt::new(tags.sampled_sets(), geom.assoc()),
            sdh: Sdh::new(geom.assoc()),
            observed: 0,
            tags,
        })
    }

    /// The tag store backing this profiler's ATD.
    pub fn tags(&self) -> &TagStoreState {
        &self.tags
    }

    /// The estimated stack position of way `way` in ATD set `aset`.
    #[inline]
    pub fn estimated_position(&self, aset: usize, way: usize) -> usize {
        let id = way as u32; // the Figure 4(c) decoder
        let x = self.bt.path_bits(aset, way) ^ id;
        self.bt.assoc() - x as usize
    }
}

impl Profiler for BtProfiler {
    fn observe(&mut self, addr: Addr) {
        let Some(aset) = self.tags.sampled_set(addr) else {
            return;
        };
        self.observed += 1;
        let tag = self.tags.tag(addr);
        match self.tags.lookup(aset, tag) {
            Some(way) => {
                let d = self.estimated_position(aset, way);
                self.sdh.record(d);
                self.bt.on_access(aset, way);
            }
            None => {
                self.sdh.record_miss();
                let way = self
                    .tags
                    .invalid_way(aset)
                    .unwrap_or_else(|| self.bt.victim(aset));
                self.tags.fill(aset, way, tag);
                self.bt.on_access(aset, way);
            }
        }
    }

    fn sdh(&self) -> &Sdh {
        &self.sdh
    }

    fn decay(&mut self) {
        self.sdh.decay();
    }

    fn reset(&mut self) {
        self.tags.reset();
        self.bt.reset();
        self.sdh.reset();
        self.observed = 0;
    }

    fn observed(&self) -> u64 {
        self.observed
    }
}

// ---------------------------------------------------------------------
// Dispatch
// ---------------------------------------------------------------------

/// Enum dispatch over the three profilers.
#[derive(Debug, Clone)]
pub enum ProfilerState {
    /// Exact SDH under LRU.
    Lru(LruProfiler),
    /// eSDH under NRU.
    Nru(NruProfiler),
    /// eSDH under BT.
    Bt(BtProfiler),
}

impl ProfilerState {
    /// The NRU profiler inside, if this is one.
    pub fn as_nru_mut(&mut self) -> Option<&mut NruProfiler> {
        match self {
            ProfilerState::Nru(p) => Some(p),
            _ => None,
        }
    }

    /// The NRU scaling factor, if this is an NRU profiler.
    pub fn nru_scale(&self) -> Option<f64> {
        match self {
            ProfilerState::Nru(p) => Some(p.scale()),
            _ => None,
        }
    }

    /// Build the profiler matching an L2 replacement policy on the exact
    /// tag store. Panics for `Random`/`FIFO` (the paper defines no
    /// profiling logic for them); the validated path is
    /// [`Self::try_new`].
    pub fn new(
        kind: PolicyKind,
        geom: CacheGeometry,
        sample_ratio: usize,
        nru_scale: f64,
        nru_mode: NruUpdateMode,
    ) -> Self {
        Self::try_new(
            kind,
            geom,
            sample_ratio,
            nru_scale,
            nru_mode,
            ProfilerFidelity::Exact,
        )
        .unwrap_or_else(|e| panic!("{e}"))
    }

    /// Build the profiler matching an L2 replacement policy at a given
    /// tag-store fidelity, surfacing invalid combinations as one-line
    /// errors.
    pub fn try_new(
        kind: PolicyKind,
        geom: CacheGeometry,
        sample_ratio: usize,
        nru_scale: f64,
        nru_mode: NruUpdateMode,
        fidelity: ProfilerFidelity,
    ) -> Result<Self, CacheError> {
        match kind {
            PolicyKind::Lru => Ok(ProfilerState::Lru(LruProfiler::try_new(
                geom,
                sample_ratio,
                fidelity,
            )?)),
            PolicyKind::Nru => Ok(ProfilerState::Nru(NruProfiler::try_new(
                geom,
                sample_ratio,
                nru_scale,
                nru_mode,
                fidelity,
            )?)),
            PolicyKind::Bt => Ok(ProfilerState::Bt(BtProfiler::try_new(
                geom,
                sample_ratio,
                fidelity,
            )?)),
            PolicyKind::Random | PolicyKind::Fifo => Err(CacheError::BadPartition {
                reason: format!(
                    "no profiling logic exists for {} replacement \
                     (the scheme registry rejects partitioned {} at parse time)",
                    kind.acronym(),
                    kind.acronym()
                ),
            }),
        }
    }

    /// The tag-store fidelity this profiler runs at.
    pub fn fidelity(&self) -> ProfilerFidelity {
        match self {
            ProfilerState::Lru(p) => p.tags.fidelity(),
            ProfilerState::Nru(p) => p.tags.fidelity(),
            ProfilerState::Bt(p) => p.tags.fidelity(),
        }
    }
}

impl Profiler for ProfilerState {
    fn observe(&mut self, addr: Addr) {
        match self {
            ProfilerState::Lru(p) => p.observe(addr),
            ProfilerState::Nru(p) => p.observe(addr),
            ProfilerState::Bt(p) => p.observe(addr),
        }
    }

    fn sdh(&self) -> &Sdh {
        match self {
            ProfilerState::Lru(p) => p.sdh(),
            ProfilerState::Nru(p) => p.sdh(),
            ProfilerState::Bt(p) => p.sdh(),
        }
    }

    fn decay(&mut self) {
        match self {
            ProfilerState::Lru(p) => p.decay(),
            ProfilerState::Nru(p) => p.decay(),
            ProfilerState::Bt(p) => p.decay(),
        }
    }

    fn reset(&mut self) {
        match self {
            ProfilerState::Lru(p) => p.reset(),
            ProfilerState::Nru(p) => p.reset(),
            ProfilerState::Bt(p) => p.reset(),
        }
    }

    fn observed(&self) -> u64 {
        match self {
            ProfilerState::Lru(p) => p.observed(),
            ProfilerState::Nru(p) => p.observed(),
            ProfilerState::Bt(p) => p.observed(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A small fully-sampled geometry for precise checks: 4 sets x 4 ways.
    fn tiny_geom() -> CacheGeometry {
        CacheGeometry::new(1024, 4, 64).unwrap()
    }

    /// Byte address of the n-th distinct line mapping to set `set`.
    fn addr_in_set(set: usize, n: u64) -> Addr {
        ((n << 2) | set as u64) << 6
    }

    #[test]
    fn lru_profiler_reproduces_figure_2() {
        let mut p = LruProfiler::new(tiny_geom(), 1);
        // Fill {A,B,C,D} = lines 0..4 of set 0 (4 compulsory misses).
        for n in 0..4 {
            p.observe(addr_in_set(0, n));
        }
        assert_eq!(p.sdh().register(5), 4, "four ATD misses");
        // Accesses C D D: C at distance 2 (after fill order A,B,C,D the
        // stack is D,C,B,A — C sits at position 2), D at 2, D at 1.
        p.observe(addr_in_set(0, 2));
        p.observe(addr_in_set(0, 3));
        p.observe(addr_in_set(0, 3));
        assert_eq!(p.sdh().register(1), 1, "second D access at distance 1");
        assert_eq!(p.sdh().register(2), 2);
    }

    #[test]
    fn lru_profiler_miss_curve_matches_exact_simulation() {
        // The stack property: SDH-predicted misses at w ways must equal a
        // real w-way LRU cache's misses on the same trace.
        use cachesim::{Cache, CacheConfig};
        let geom = tiny_geom();
        let mut p = LruProfiler::new(geom, 1);
        // A pseudo-random but deterministic trace over 12 lines.
        let trace: Vec<Addr> = (0..4000u64)
            .map(|i| addr_in_set((i % 4) as usize, (i * 7 + i * i / 5) % 12))
            .collect();
        for &a in &trace {
            p.observe(a);
        }
        for ways in 1..=4usize {
            let g = CacheGeometry::new(64 * 4 * ways as u64, ways, 64).unwrap();
            assert_eq!(g.num_sets(), 4);
            let mut c = Cache::new(CacheConfig {
                geometry: g,
                policy: PolicyKind::Lru,
                num_cores: 1,
                seed: 0,
            });
            let mut misses = 0u64;
            for &a in &trace {
                if !c.access(0, a, false).hit {
                    misses += 1;
                }
            }
            assert_eq!(
                p.sdh().misses_with_ways(ways),
                misses,
                "stack property violated at {ways} ways"
            );
        }
    }

    #[test]
    fn nru_profiler_estimates_figure_3a() {
        // Figure 3(a): lines {A,B,C,D} resident, used bits cleared, then
        // accesses C, D, D. Third access finds D's used bit 1 with U=2:
        // estimated distance S*U = 2 at S=1.0.
        let mut p = NruProfiler::new(tiny_geom(), 1, 1.0, NruUpdateMode::Scaled);
        for n in 0..4 {
            p.observe(addr_in_set(0, n));
        }
        // Saturation rule left only line 3's bit set; clear state by a
        // fresh profiler instead for exactness.
        let mut p = NruProfiler::new(tiny_geom(), 1, 1.0, NruUpdateMode::Scaled);
        for n in 0..4 {
            p.observe(addr_in_set(0, n));
        }
        // After the 4 fills, the saturation reset fired on the 4th: only
        // line 3 has its bit set. Access C (line 2, bit 0 -> no update),
        // then D (line 3, bit 1, U=2 after C set its bit).
        p.observe(addr_in_set(0, 2));
        let before = p.sdh().register(2);
        p.observe(addr_in_set(0, 3));
        assert_eq!(p.sdh().register(2) - before, 1, "D estimated at distance 2");
    }

    #[test]
    fn nru_used_bit_zero_hits_leave_sdh_unchanged() {
        let mut p = NruProfiler::new(tiny_geom(), 1, 1.0, NruUpdateMode::Scaled);
        for n in 0..4 {
            p.observe(addr_in_set(0, n));
        }
        // Only line 3's used bit is set now. A hit on line 0 (bit 0) must
        // not update any hit register.
        let hits_before: u64 = (1..=4).map(|d| p.sdh().register(d)).sum();
        p.observe(addr_in_set(0, 0));
        let hits_after: u64 = (1..=4).map(|d| p.sdh().register(d)).sum();
        assert_eq!(hits_before, hits_after);
    }

    #[test]
    fn nru_scaling_factor_shrinks_distances() {
        let geom = CacheGeometry::new(4096, 16, 64).unwrap(); // 4 sets x 16
        let p1 = NruProfiler::new(geom, 1, 1.0, NruUpdateMode::Scaled);
        let p075 = NruProfiler::new(geom, 1, 0.75, NruUpdateMode::Scaled);
        let p05 = NruProfiler::new(geom, 1, 0.5, NruUpdateMode::Scaled);
        assert_eq!(p1.scaled_distance(8), 8);
        assert_eq!(p075.scaled_distance(8), 6);
        assert_eq!(p05.scaled_distance(8), 4);
        // Paper: "if U = 7, we compute S×U = 3.5 -> 4" at S = 0.5.
        assert_eq!(p05.scaled_distance(7), 4);
    }

    #[test]
    fn nru_smear_mode_updates_prefix_registers() {
        let mut p = NruProfiler::new(tiny_geom(), 1, 1.0, NruUpdateMode::Smear);
        for n in 0..4 {
            p.observe(addr_in_set(0, n));
        }
        // Hit line 3 (bit set, U=1): smear increments r1 only.
        p.observe(addr_in_set(0, 3));
        assert_eq!(p.sdh().register(1), 1);
        // Hit line 3 again (U still 1 after saturation bookkeeping).
        p.observe(addr_in_set(0, 3));
        assert_eq!(p.sdh().register(1), 2);
    }

    #[test]
    fn bt_profiler_figure_4b_example() {
        // 4-way set; access D (way 3) when the tree bits on its path are
        // "10": estimated position = 4 - (11 XOR 10) = 3.
        let mut p = BtProfiler::new(tiny_geom(), 1);
        for n in 0..4 {
            p.observe(addr_in_set(0, n));
        }
        // Craft the path state: access way 0 sets root=1 (MRU upper); the
        // node over {C,D} was last set by D's fill (bit 0 = MRU lower).
        // After fills A,B,C,D then access A: root=1, node(C,D)=0 -> D path
        // bits = 10.
        p.observe(addr_in_set(0, 0));
        let before = p.sdh().register(3);
        p.observe(addr_in_set(0, 3));
        assert_eq!(p.sdh().register(3) - before, 1, "D estimated at position 3");
    }

    #[test]
    fn bt_estimated_position_bounds() {
        // Estimated positions are always within [1, A].
        let geom = CacheGeometry::new(4096, 16, 64).unwrap();
        let mut p = BtProfiler::new(geom, 1);
        let mut acc = 3u64;
        for i in 0..5000u64 {
            acc = acc.wrapping_mul(6364136223846793005).wrapping_add(i);
            let set = (acc >> 8) % 4;
            let line = (acc >> 16) % 40;
            p.observe(((line << 2) | set) << 6);
        }
        // All recorded register indices are within 1..=A+1 by Sdh's
        // construction; additionally the MRU re-access property holds:
        for way in 0..16usize {
            let a = addr_in_set_16(0, way as u64);
            p.observe(a); // may fill
            p.observe(a); // immediate re-access = estimated position 1
        }
        assert!(p.sdh().register(1) > 0);
    }

    /// Address helper for the 16-way geometry (4 sets).
    fn addr_in_set_16(set: usize, n: u64) -> Addr {
        ((n << 2) | set as u64) << 6
    }

    #[test]
    fn sampled_profiler_ignores_unsampled_sets() {
        let geom = CacheGeometry::new(2 * 1024 * 1024, 16, 128).unwrap();
        let mut p = LruProfiler::new(geom, 32);
        // Set 1 is not sampled (1 % 32 != 0).
        p.observe(1u64 << 7);
        assert_eq!(p.observed(), 0);
        assert_eq!(p.sdh().total(), 0);
        // Set 0 is sampled.
        p.observe(0);
        assert_eq!(p.observed(), 1);
        assert_eq!(p.sdh().total(), 1);
    }

    #[test]
    fn dispatch_constructs_all_three() {
        let geom = tiny_geom();
        for kind in [PolicyKind::Lru, PolicyKind::Nru, PolicyKind::Bt] {
            let mut p = ProfilerState::new(kind, geom, 1, 0.75, NruUpdateMode::Scaled);
            p.observe(addr_in_set(0, 0));
            assert_eq!(p.sdh().total(), 1);
            p.decay();
            p.reset();
            assert_eq!(p.sdh().total(), 0);
        }
    }

    #[test]
    fn dispatch_rejects_random_with_one_line_error() {
        let err = ProfilerState::try_new(
            PolicyKind::Random,
            tiny_geom(),
            1,
            0.75,
            NruUpdateMode::Scaled,
            ProfilerFidelity::Exact,
        )
        .unwrap_err();
        let msg = err.to_string();
        assert!(
            msg.contains("no profiling logic"),
            "unexpected error: {msg}"
        );
        assert!(!msg.contains('\n'), "error must be one line");
    }

    #[test]
    fn dispatch_constructs_sketch_fidelity() {
        let geom = tiny_geom();
        for kind in [PolicyKind::Lru, PolicyKind::Nru, PolicyKind::Bt] {
            let mut p = ProfilerState::try_new(
                kind,
                geom,
                1,
                0.75,
                NruUpdateMode::Scaled,
                ProfilerFidelity::Sketch { fp_bits: 16 },
            )
            .unwrap();
            assert_eq!(p.fidelity(), ProfilerFidelity::Sketch { fp_bits: 16 });
            p.observe(addr_in_set(0, 0));
            assert_eq!(p.sdh().total(), 1);
            p.reset();
            assert_eq!(p.sdh().total(), 0);
        }
    }

    #[test]
    fn sketch_lru_profiler_matches_exact_on_small_traces() {
        // With 16-bit fingerprints and a tiny working set, collisions are
        // (deterministically) absent, so the sketch profiler's SDH must be
        // bit-identical to the exact one.
        let geom = tiny_geom();
        let mut exact = LruProfiler::new(geom, 1);
        let mut sketch =
            LruProfiler::try_new(geom, 1, ProfilerFidelity::Sketch { fp_bits: 16 }).unwrap();
        for i in 0..4000u64 {
            let a = addr_in_set((i % 4) as usize, (i * 7 + i * i / 5) % 12);
            exact.observe(a);
            sketch.observe(a);
        }
        for d in 1..=5 {
            assert_eq!(exact.sdh().register(d), sketch.sdh().register(d), "reg {d}");
        }
    }
}
