//! # plru-core — cache partitioning for pseudo-LRU replacement policies
//!
//! This crate implements the primary contribution of *"Adapting Cache
//! Partitioning Algorithms to Pseudo-LRU Replacement Policies"*
//! (Kędzierski, Moretó, Cazorla, Valero — IPDPS 2010): a complete dynamic
//! cache-partitioning system that works on top of the NRU and Binary-Tree
//! pseudo-LRU replacement schemes used by real processors, alongside the
//! classical true-LRU system it is measured against.
//!
//! The moving parts mirror the paper's Section II/III decomposition:
//!
//! * **Profiling logic** — a per-thread sampled Auxiliary Tag Directory
//!   ([`atd`]) feeding a Stack Distance Histogram ([`sdh::Sdh`]).
//!   * under true LRU the ATD reports exact stack positions
//!     ([`profiler::LruProfiler`]);
//!   * under NRU the stack position is *estimated* from the number of set
//!     used bits, with a scaling factor `S` ([`profiler::NruProfiler`],
//!     Section III-A);
//!   * under BT it is estimated by XOR-ing the accessed way's identifier
//!     bits with the tree bits on its path ([`profiler::BtProfiler`],
//!     Section III-B).
//! * **Partition selection** — the MinMisses algorithm ([`minmisses`]),
//!   both as an exact dynamic program and as the classical greedy
//!   marginal-gain heuristic.
//! * **Partition enforcement** — translation of a way allocation into the
//!   mechanism the L2 actually supports ([`enforce`]): per-set owner
//!   counters (`C`), global replacement masks (`M`), or BT up/down
//!   vectors (strict aligned-subtree mode or the generalized masked walk).
//! * **The dynamic controller** ([`controller::CpaController`]) that ties
//!   it together at every interval boundary (1 M cycles in the paper).
//!
//! Configurations are named with the paper's acronyms ([`config::CpaConfig`]):
//! `C-L`, `M-L`, `M-1.0N`, `M-0.75N`, `M-0.5N`, `M-BT`.
//!
//! The policy × partitioning cross-product itself is a first-class value:
//! [`scheme::Scheme`] pairs a replacement policy with an optional CPA
//! configuration behind one canonical acronym grammar and a capability
//! registry ([`scheme::registry`]) — the configuration currency every
//! layer above this crate (engine, scenario specs, trace metadata, CLIs)
//! trades in.

pub mod atd;
pub mod config;
pub mod controller;
pub mod enforce;
pub mod minmisses;
pub mod profiler;
pub mod scheme;
pub mod sdh;
pub mod sketch;

pub use config::{CpaConfig, EnforcementStyle, NruUpdateMode, Objective, Selector};
pub use controller::CpaController;
pub use minmisses::{fairness_minimax, min_misses_dp, min_misses_greedy};
pub use profiler::{BtProfiler, LruProfiler, NruProfiler, Profiler, ProfilerState};
pub use scheme::{PolicyEntry, Scheme, SchemeError};
pub use sdh::Sdh;
pub use sketch::{CuckooFilter, ProfilerFidelity, SketchAtd, TagStore, TagStoreState};
