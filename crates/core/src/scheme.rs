//! The first-class `Scheme` type and the policy registry behind it.
//!
//! The paper's whole subject is the cross-product of replacement policies
//! with partitioning algorithms adapted to them, and a [`Scheme`] names
//! exactly one point of that cross-product: a replacement policy plus an
//! optional dynamic-CPA configuration whose profiling policy matches it.
//! It is **the** configuration currency of the workspace — the engine
//! builder takes one, scenario specs expand into them, trace metadata
//! records their canonical string, and the `trace`/`sweep` binaries parse
//! nothing else.
//!
//! ## Naming grammar
//!
//! One canonical acronym grammar (`FromStr` parses it, `Display` prints
//! it):
//!
//! ```text
//! scheme     := policy | cpa
//! policy     := "L" | "N" | "BT" | "R" | "F"          (bare, unpartitioned)
//! cpa        := enforcement "-" profiled
//! enforcement:= "C" | "M"                             (owner counters | masks)
//! profiled   := "L" | "BT" | scale "N"                (policies with a profiler)
//! scale      := float in (0, 1]                       (canonical: "1.0", "0.75", ...)
//! ```
//!
//! Parsing is forgiving about scale spellings (`M-.75N` == `M-0.75N`);
//! printing always emits the canonical form, which is what shipped trace
//! containers and golden reports store.
//!
//! ## The registry
//!
//! [`registry`] enumerates every replacement policy together with its
//! capability flags: which [`EnforcementStyle`]s its CPA can run (empty
//! for the reference policies, which have no profiling logic and are
//! therefore bare-only). Invalid combinations — `M-R`, `C-F`, an NRU
//! scale outside `(0, 1]` — are rejected **at parse time** with a
//! one-line error instead of panicking deep inside the controller.
//!
//! ```
//! use plru_core::{CpaConfig, Scheme};
//!
//! // Parse, inspect, and print the canonical form.
//! let m075n: Scheme = "M-.75N".parse().unwrap();
//! assert_eq!(m075n.to_string(), "M-0.75N");
//! assert_eq!(m075n.cpa().unwrap().nru_scale, 0.75);
//!
//! // Construct programmatically; the policy is implied by the CPA.
//! let same = Scheme::partitioned(CpaConfig::m_nru(0.75)).unwrap();
//! assert_eq!(same, m075n);
//!
//! // Invalid combinations fail with a readable one-line error.
//! let err = "M-R".parse::<Scheme>().unwrap_err().to_string();
//! assert!(err.contains("cannot be partitioned"));
//!
//! // Enumerate the baseline sweep set (`"schemes": "all"` in specs).
//! let all: Vec<String> = Scheme::all_baseline().iter().map(|s| s.to_string()).collect();
//! assert!(all.contains(&"L".to_string()) && all.contains(&"M-BT".to_string()));
//! ```

use crate::config::{CpaConfig, EnforcementStyle};
use crate::sketch::ProfilerFidelity;
use cachesim::PolicyKind;
use serde::{Deserialize, Error as SerdeError, Serialize, Value};
use std::fmt;
use std::str::FromStr;

/// One registered replacement policy with its scheme capabilities.
#[derive(Debug, Clone, Copy)]
pub struct PolicyEntry {
    /// The policy.
    pub kind: PolicyKind,
    /// Acronym used in scheme strings (`"L"`, `"BT"`, ...).
    pub acronym: &'static str,
    /// Human-readable name.
    pub name: &'static str,
    /// Enforcement styles a dynamic CPA can pair with this policy; empty
    /// means the policy has no profiling logic and runs bare only.
    pub enforcements: &'static [EnforcementStyle],
    /// Does the CPA acronym carry an eSDH scaling factor (NRU only)?
    pub scaled: bool,
    /// One-line description (shown by `sweep --list-schemes`).
    pub summary: &'static str,
}

impl PolicyEntry {
    /// Can a CPA with this policy use the given enforcement style?
    pub fn supports(&self, style: EnforcementStyle) -> bool {
        self.enforcements.contains(&style)
    }

    /// Does the policy support dynamic partitioning at all?
    pub fn partitionable(&self) -> bool {
        !self.enforcements.is_empty()
    }
}

const BOTH_STYLES: &[EnforcementStyle] =
    &[EnforcementStyle::OwnerCounters, EnforcementStyle::Masks];

/// The policy registry, in canonical order. Adding a policy here (plus
/// its `cachesim` kernel) is all the scheme layer needs to parse, print,
/// validate and enumerate it everywhere.
const REGISTRY: &[PolicyEntry] = &[
    PolicyEntry {
        kind: PolicyKind::Lru,
        acronym: "L",
        name: "true LRU",
        enforcements: BOTH_STYLES,
        scaled: false,
        summary: "exact stack ranks; the classical CPA baseline",
    },
    PolicyEntry {
        kind: PolicyKind::Nru,
        acronym: "N",
        name: "NRU",
        enforcements: BOTH_STYLES,
        scaled: true,
        summary: "used bits + global pointer (UltraSPARC T2); eSDH scaled by S",
    },
    PolicyEntry {
        kind: PolicyKind::Bt,
        acronym: "BT",
        name: "binary-tree pseudo-LRU",
        enforcements: BOTH_STYLES,
        scaled: false,
        summary: "A-1 tree bits (IBM); eSDH from path XOR, up/down vectors",
    },
    PolicyEntry {
        kind: PolicyKind::Random,
        acronym: "R",
        name: "random",
        enforcements: &[],
        scaled: false,
        summary: "seeded uniform victim; reference, no profiling logic",
    },
    PolicyEntry {
        kind: PolicyKind::Fifo,
        acronym: "F",
        name: "FIFO",
        enforcements: &[],
        scaled: false,
        summary: "per-set fill pointer; recency-blind reference, no profiling logic",
    },
];

/// Every registered policy with its capability flags, in canonical order.
pub fn registry() -> &'static [PolicyEntry] {
    REGISTRY
}

/// The registry entry of a policy.
pub fn policy_entry(kind: PolicyKind) -> &'static PolicyEntry {
    REGISTRY
        .iter()
        .find(|e| e.kind == kind)
        .expect("every PolicyKind is registered")
}

/// Look a policy up by its scheme acronym.
pub fn policy_by_acronym(acronym: &str) -> Option<&'static PolicyEntry> {
    REGISTRY.iter().find(|e| e.acronym == acronym)
}

/// Why a scheme string or combination was rejected. Always renders as a
/// single readable line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SchemeError {
    msg: String,
}

impl SchemeError {
    fn new(msg: impl Into<String>) -> Self {
        SchemeError { msg: msg.into() }
    }
}

impl fmt::Display for SchemeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.msg)
    }
}

impl std::error::Error for SchemeError {}

fn bare_acronyms() -> String {
    let names: Vec<&str> = REGISTRY.iter().map(|e| e.acronym).collect();
    names.join("/")
}

/// A replacement policy plus an optional dynamic-CPA configuration — one
/// point of the paper's policy × partitioning cross-product.
///
/// The invariant `cpa.policy == policy` (and "the policy supports the
/// CPA's enforcement style") holds by construction: both the parser and
/// [`Scheme::partitioned`] validate against the [`registry`], so an
/// invalid combination can never reach the controller.
///
/// `Scheme` serializes with full fidelity (the embedded [`CpaConfig`]
/// keeps overrides like `interval_cycles` that the acronym cannot carry),
/// and deserializes from either that form or a bare acronym string.
#[derive(Debug, Clone, PartialEq)]
pub struct Scheme {
    policy: PolicyKind,
    cpa: Option<CpaConfig>,
}

impl Scheme {
    /// A bare (unpartitioned) policy.
    pub fn bare(policy: PolicyKind) -> Self {
        Scheme { policy, cpa: None }
    }

    /// A dynamically partitioned scheme; the L2 policy is the CPA's
    /// profiling policy (the paper always pairs them).
    ///
    /// Errors when the registry says the policy has no profiling logic or
    /// does not support the configuration's enforcement style.
    pub fn partitioned(cpa: CpaConfig) -> Result<Self, SchemeError> {
        let entry = policy_entry(cpa.policy);
        if !entry.partitionable() {
            return Err(SchemeError::new(format!(
                "policy {} ({}) has no profiling logic and cannot be partitioned",
                entry.acronym, entry.name
            )));
        }
        if !entry.supports(cpa.enforcement) {
            return Err(SchemeError::new(format!(
                "policy {} ({}) does not support {:?} enforcement",
                entry.acronym, entry.name, cpa.enforcement
            )));
        }
        Ok(Scheme {
            policy: cpa.policy,
            cpa: Some(cpa),
        })
    }

    /// The L2 replacement policy (for partitioned schemes, also the
    /// profiling policy).
    pub fn policy(&self) -> PolicyKind {
        self.policy
    }

    /// The dynamic-CPA configuration, if the scheme partitions.
    pub fn cpa(&self) -> Option<&CpaConfig> {
        self.cpa.as_ref()
    }

    /// Does the scheme run the dynamic partitioning controller?
    pub fn is_partitioned(&self) -> bool {
        self.cpa.is_some()
    }

    /// The canonical acronym (`"L"`, `"M-0.75N"`, ...); same as `Display`.
    pub fn acronym(&self) -> String {
        self.to_string()
    }

    /// This scheme's registry entry (capability flags, summary).
    pub fn policy_entry(&self) -> &'static PolicyEntry {
        policy_entry(self.policy)
    }

    /// Fold a repartition-interval override into a CPA scheme (no-op for
    /// bare policies) — how scenario specs apply `interval_cycles`.
    pub fn with_interval_cycles(mut self, interval_cycles: Option<u64>) -> Self {
        if let (Some(cpa), Some(iv)) = (self.cpa.as_mut(), interval_cycles) {
            cpa.interval_cycles = iv;
        }
        self
    }

    /// Fold a profiler tag-store fidelity into a CPA scheme (no-op for
    /// bare policies, which run no profilers) — how the engine builder
    /// and the scenario `profilers` axis apply sketch fidelities.
    pub fn with_fidelity(mut self, fidelity: Option<ProfilerFidelity>) -> Self {
        if let (Some(cpa), Some(f)) = (self.cpa.as_mut(), fidelity) {
            cpa.fidelity = Some(f);
        }
        self
    }

    /// The baseline scheme enumeration sweeps use (`"schemes": "all"`):
    /// every registered policy bare, in registry order, followed by the
    /// paper's six evaluated CPA configurations in Figure 7 order.
    pub fn all_baseline() -> Vec<Scheme> {
        REGISTRY
            .iter()
            .map(|e| Scheme::bare(e.kind))
            .chain(CpaConfig::figure7_set().into_iter().map(|c| {
                Scheme::partitioned(c).expect("the paper's configurations are always valid")
            }))
            .collect()
    }
}

impl From<PolicyKind> for Scheme {
    fn from(policy: PolicyKind) -> Self {
        Scheme::bare(policy)
    }
}

impl TryFrom<CpaConfig> for Scheme {
    type Error = SchemeError;

    fn try_from(cpa: CpaConfig) -> Result<Self, SchemeError> {
        Scheme::partitioned(cpa)
    }
}

impl fmt::Display for Scheme {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.cpa {
            Some(cpa) => write!(f, "{}", cpa.acronym()),
            None => f.write_str(policy_entry(self.policy).acronym),
        }
    }
}

impl FromStr for Scheme {
    type Err = SchemeError;

    /// Parse the canonical grammar (see the module docs). This is the
    /// single scheme parser of the workspace — scenario specs, trace
    /// metadata and both binaries all come through here.
    fn from_str(s: &str) -> Result<Self, SchemeError> {
        if let Some(entry) = policy_by_acronym(s) {
            return Ok(Scheme::bare(entry.kind));
        }
        let Some((enf_s, rest)) = s.split_once('-') else {
            return Err(SchemeError::new(format!(
                "unknown scheme `{s}` (expected a bare policy {} or a CPA acronym \
                 like C-L, M-L, M-0.75N, M-BT)",
                bare_acronyms()
            )));
        };
        let enforcement = match enf_s {
            "C" => EnforcementStyle::OwnerCounters,
            "M" => EnforcementStyle::Masks,
            other => {
                return Err(SchemeError::new(format!(
                    "unknown enforcement `{other}` in scheme `{s}` \
                     (expected C = owner counters or M = masks)"
                )))
            }
        };
        if rest.is_empty() {
            return Err(SchemeError::new(format!(
                "scheme `{s}` names no policy after the enforcement \
                 (expected e.g. {enf_s}-L)"
            )));
        }

        // Exact policy acronym (L, BT, ... — also R/F, rejected below), or
        // a scale-prefixed acronym of a scaled policy (0.75N).
        let (entry, scale) = if let Some(entry) = policy_by_acronym(rest) {
            (entry, None)
        } else if let Some((entry, scale_s)) = REGISTRY
            .iter()
            .filter(|e| e.scaled)
            .find_map(|e| rest.strip_suffix(e.acronym).map(|p| (e, p)))
        {
            let scale: f64 = scale_s.parse().map_err(|_| {
                SchemeError::new(format!(
                    "scheme `{s}`: bad {} scale `{scale_s}` (expected a number in (0, 1])",
                    entry.name
                ))
            })?;
            if !(scale > 0.0 && scale <= 1.0) {
                return Err(SchemeError::new(format!(
                    "scheme `{s}`: {} eSDH scale {scale} outside (0, 1]",
                    entry.name
                )));
            }
            (entry, Some(scale))
        } else {
            return Err(SchemeError::new(format!(
                "scheme `{s}`: unknown policy `{rest}` (expected {} — \
                 N takes a scale prefix, e.g. 0.75N)",
                bare_acronyms()
            )));
        };

        if !entry.partitionable() {
            return Err(SchemeError::new(format!(
                "scheme `{s}`: policy {} ({}) has no profiling logic and cannot \
                 be partitioned — run it bare as `{}`",
                entry.acronym, entry.name, entry.acronym
            )));
        }
        if entry.scaled && scale.is_none() {
            return Err(SchemeError::new(format!(
                "scheme `{s}`: {} needs an eSDH scale prefix (e.g. {enf_s}-0.75{})",
                entry.name, entry.acronym
            )));
        }

        let base = match entry.kind {
            PolicyKind::Lru => CpaConfig::c_l(),
            PolicyKind::Nru => CpaConfig::m_nru(scale.expect("checked above")),
            PolicyKind::Bt => CpaConfig::m_bt(),
            PolicyKind::Random | PolicyKind::Fifo => unreachable!("rejected above"),
        };
        Scheme::partitioned(CpaConfig {
            enforcement,
            ..base
        })
    }
}

// Wire format: the externally-tagged shape the golden sweep reports
// already store — `{"Policy": <kind>}` for bare schemes, `{"Cpa":
// <config>}` for partitioned ones (full fidelity: the embedded config
// keeps interval overrides the acronym cannot express). Deserialization
// additionally accepts a plain acronym string.
impl Serialize for Scheme {
    fn to_value(&self) -> Value {
        match &self.cpa {
            Some(cpa) => Value::Object(vec![("Cpa".to_string(), cpa.to_value())]),
            None => Value::Object(vec![("Policy".to_string(), self.policy.to_value())]),
        }
    }
}

impl Deserialize for Scheme {
    fn from_value(v: &Value) -> Result<Self, SerdeError> {
        match v {
            Value::Str(s) => s
                .parse()
                .map_err(|e: SchemeError| SerdeError::new(e.to_string())),
            Value::Object(entries) => match entries.as_slice() {
                [(k, inner)] if k == "Policy" => Ok(Scheme::bare(PolicyKind::from_value(inner)?)),
                [(k, inner)] if k == "Cpa" => Scheme::partitioned(CpaConfig::from_value(inner)?)
                    .map_err(|e| SerdeError::new(e.to_string())),
                _ => Err(SerdeError::new(
                    "scheme object must be {\"Policy\": ...} or {\"Cpa\": ...}",
                )),
            },
            other => Err(SerdeError::new(format!(
                "scheme must be an acronym string or a {{\"Policy\"/\"Cpa\"}} object, found {}",
                other.kind()
            ))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_acronyms_are_unique_and_parse_bare() {
        for e in registry() {
            assert_eq!(
                policy_by_acronym(e.acronym).unwrap().kind,
                e.kind,
                "acronym {} must be unique",
                e.acronym
            );
            let s: Scheme = e.acronym.parse().unwrap();
            assert_eq!(s, Scheme::bare(e.kind));
            assert_eq!(s.to_string(), e.acronym);
        }
    }

    #[test]
    fn paper_schemes_parse_and_round_trip() {
        for acr in ["C-L", "M-L", "M-1.0N", "M-0.75N", "M-0.5N", "M-BT"] {
            let s: Scheme = acr.parse().unwrap();
            assert!(s.is_partitioned());
            assert_eq!(s.to_string(), acr);
        }
    }

    #[test]
    fn scale_spellings_normalize() {
        let a: Scheme = "M-.75N".parse().unwrap();
        let b: Scheme = "M-0.75N".parse().unwrap();
        assert_eq!(a, b);
        assert_eq!(a.to_string(), "M-0.75N");
        assert_eq!("C-1N".parse::<Scheme>().unwrap().to_string(), "C-1.0N");
    }

    #[test]
    fn invalid_schemes_fail_with_one_line_errors() {
        for bad in [
            "Q", "X-L", "M-R", "C-F", "M-2.0N", "M-0N", "M-xN", "M-", "M-N", "M-0.75L", "",
        ] {
            let err = bad.parse::<Scheme>().unwrap_err().to_string();
            assert!(!err.contains('\n'), "`{bad}` error must be one line: {err}");
            assert!(!err.is_empty());
        }
        assert!("M-R"
            .parse::<Scheme>()
            .unwrap_err()
            .to_string()
            .contains("cannot be partitioned"));
        assert!("M-N"
            .parse::<Scheme>()
            .unwrap_err()
            .to_string()
            .contains("scale"));
    }

    #[test]
    fn partitioned_rejects_unprofiled_policies() {
        let bad = CpaConfig {
            policy: PolicyKind::Random,
            ..CpaConfig::c_l()
        };
        assert!(Scheme::partitioned(bad).is_err());
        let bad = CpaConfig {
            policy: PolicyKind::Fifo,
            ..CpaConfig::m_l()
        };
        assert!(Scheme::partitioned(bad).is_err());
    }

    #[test]
    fn all_baseline_round_trips_through_the_parser() {
        let all = Scheme::all_baseline();
        assert_eq!(all.len(), registry().len() + 6);
        for s in &all {
            assert_eq!(&s.to_string().parse::<Scheme>().unwrap(), s);
        }
    }

    #[test]
    fn interval_override_touches_only_cpa_schemes() {
        let s: Scheme = "M-L".parse().unwrap();
        let s = s.with_interval_cycles(Some(250_000));
        assert_eq!(s.cpa().unwrap().interval_cycles, 250_000);
        let bare: Scheme = "L".parse().unwrap();
        assert!(bare.with_interval_cycles(Some(250_000)).cpa().is_none());
    }

    #[test]
    fn serde_keeps_the_legacy_wire_shape_and_accepts_strings() {
        let bare = Scheme::bare(PolicyKind::Lru);
        assert_eq!(serde_json::to_string(&bare).unwrap(), r#"{"Policy":"Lru"}"#);
        let back: Scheme = serde_json::from_str(r#"{"Policy":"Lru"}"#).unwrap();
        assert_eq!(back, bare);

        let cpa = Scheme::partitioned(CpaConfig::m_bt()).unwrap();
        let json = serde_json::to_string(&cpa).unwrap();
        assert!(json.starts_with(r#"{"Cpa":"#), "{json}");
        assert_eq!(serde_json::from_str::<Scheme>(&json).unwrap(), cpa);

        let from_str: Scheme = serde_json::from_str(r#""M-0.75N""#).unwrap();
        assert_eq!(from_str.to_string(), "M-0.75N");
        assert!(serde_json::from_str::<Scheme>(r#""M-R""#).is_err());
        assert!(serde_json::from_str::<Scheme>("42").is_err());
    }
}
