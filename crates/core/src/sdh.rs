//! Stack Distance Histogram (SDH) registers.
//!
//! One SDH per thread: `A + 1` registers (Section II-A). Register `r_d`
//! (1-based, `d in 1..=A`) counts accesses whose stack distance was `d`;
//! register `r_{A+1}` counts ATD misses. The miss count of the thread when
//! given `w` ways is `sum(r_{w+1} ..= r_A) + r_{A+1}` (Figure 2(c)).
//!
//! At every interval boundary the registers are halved ("divide all
//! register contents by 2 … only a right bit shift"), which both prevents
//! saturation and exponentially ages old behaviour.

use serde::{Deserialize, Serialize};

/// SDH register file for one thread.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Sdh {
    /// `regs[0]` unused; `regs[d]` = distance-`d` count for `d in 1..=A`;
    /// `regs[A+1]` = miss register.
    regs: Vec<u64>,
    assoc: usize,
}

impl Sdh {
    /// Zeroed SDH for an `assoc`-way cache.
    pub fn new(assoc: usize) -> Self {
        assert!(assoc >= 1);
        Sdh {
            regs: vec![0; assoc + 2],
            assoc,
        }
    }

    /// Associativity (`A`).
    pub fn assoc(&self) -> usize {
        self.assoc
    }

    /// Record a hit at stack distance `d` (1-based, clamped to `[1, A]`).
    #[inline]
    pub fn record(&mut self, d: usize) {
        let d = d.clamp(1, self.assoc);
        self.regs[d] += 1;
    }

    /// Record an ATD miss (stack distance `A + 1` in the paper's terms).
    #[inline]
    pub fn record_miss(&mut self) {
        self.regs[self.assoc + 1] += 1;
    }

    /// Raw register value (1-based distance; `assoc + 1` = miss register).
    pub fn register(&self, d: usize) -> u64 {
        self.regs[d]
    }

    /// Total recorded accesses.
    pub fn total(&self) -> u64 {
        self.regs.iter().sum()
    }

    /// Predicted misses if the thread is given `w` ways (`w in 0..=A`):
    /// every access with stack distance greater than `w` misses.
    pub fn misses_with_ways(&self, w: usize) -> u64 {
        let w = w.min(self.assoc);
        self.regs[w + 1..].iter().sum()
    }

    /// The full miss curve: `curve[w]` = predicted misses with `w` ways,
    /// for `w in 0..=A`. Monotonically non-increasing by construction.
    pub fn miss_curve(&self) -> Vec<u64> {
        (0..=self.assoc).map(|w| self.misses_with_ways(w)).collect()
    }

    /// Halve every register (the interval-boundary decay).
    pub fn decay(&mut self) {
        for r in &mut self.regs {
            *r >>= 1;
        }
    }

    /// Zero all registers.
    pub fn reset(&mut self) {
        self.regs.iter_mut().for_each(|r| *r = 0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure_2c_example() {
        // Figure 2: with registers r1..r5, a thread owning 2 ways suffers
        // r3 + r4 + r5 misses.
        let mut s = Sdh::new(4);
        for (d, n) in [(1usize, 10u64), (2, 5), (3, 3), (4, 2)] {
            for _ in 0..n {
                s.record(d);
            }
        }
        for _ in 0..7 {
            s.record_miss();
        }
        assert_eq!(s.misses_with_ways(2), 3 + 2 + 7);
        assert_eq!(s.misses_with_ways(4), 7, "full cache: only ATD misses");
        assert_eq!(s.misses_with_ways(0), 27, "no ways: everything misses");
    }

    #[test]
    fn miss_curve_is_monotone_non_increasing() {
        let mut s = Sdh::new(8);
        for d in 1..=8 {
            for _ in 0..d {
                s.record(d);
            }
        }
        s.record_miss();
        let c = s.miss_curve();
        assert_eq!(c.len(), 9);
        for w in 1..c.len() {
            assert!(c[w] <= c[w - 1]);
        }
    }

    #[test]
    fn distances_clamp_to_range() {
        let mut s = Sdh::new(4);
        s.record(0); // clamps to 1
        s.record(99); // clamps to A
        assert_eq!(s.register(1), 1);
        assert_eq!(s.register(4), 1);
    }

    #[test]
    fn decay_halves_registers() {
        let mut s = Sdh::new(4);
        for _ in 0..10 {
            s.record(2);
        }
        for _ in 0..5 {
            s.record_miss();
        }
        s.decay();
        assert_eq!(s.register(2), 5);
        assert_eq!(
            s.register(5),
            2,
            "miss register decays too (odd halves down)"
        );
    }

    #[test]
    fn decay_is_right_shift_semantics() {
        let mut s = Sdh::new(2);
        s.record(1);
        s.decay();
        assert_eq!(s.register(1), 0, "1 >> 1 == 0");
    }

    #[test]
    fn total_counts_everything() {
        let mut s = Sdh::new(4);
        s.record(1);
        s.record(4);
        s.record_miss();
        assert_eq!(s.total(), 3);
    }

    #[test]
    fn misses_with_excess_ways_saturates() {
        let mut s = Sdh::new(4);
        s.record_miss();
        assert_eq!(s.misses_with_ways(10), 1);
    }

    #[test]
    fn reset_zeroes() {
        let mut s = Sdh::new(4);
        s.record(3);
        s.reset();
        assert_eq!(s.total(), 0);
    }

    #[test]
    fn serde_round_trip() {
        let mut s = Sdh::new(4);
        s.record(2);
        let j = serde_json::to_string(&s).unwrap();
        assert_eq!(serde_json::from_str::<Sdh>(&j).unwrap(), s);
    }
}
