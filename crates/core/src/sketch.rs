//! Sketch-sampled ATD membership (ROADMAP item 4).
//!
//! The paper's profiler keeps one full auxiliary tag directory per core:
//! `sampled_sets x assoc` tag words per thread, which is what stops the
//! simulated machine from growing past a handful of cores. This module
//! replaces the *membership* half of the ATD with an autoscaling cuckoo
//! filter — a hardware structure storing `fp_bits`-wide fingerprints
//! instead of 47-bit tags — while the per-way replacement metadata (LRU
//! ranks / NRU used bits / BT tree bits) stays exact in the profilers.
//!
//! Three layers:
//!
//! * [`CuckooFilter`] — a dependency-free, deterministic, bucketed
//!   2-choice cuckoo filter with 8/12/16-bit fingerprints, a bounded
//!   kick loop that triggers a doubling rebuild, and explicit delete.
//! * [`SketchAtd`] — the filter-backed drop-in for [`AtdTags`]: the
//!   filter answers "is this (set, tag) resident anywhere", a small
//!   exact per-way fingerprint sidecar answers "which way".
//! * [`TagStore`] / [`TagStoreState`] — the trait both stores satisfy
//!   and the enum the profilers dispatch over, selected per scheme by
//!   [`ProfilerFidelity`].
//!
//! The software filter stores the full 64-bit key hash per slot so that
//! delete can match exactly (no false negatives under arbitrary
//! insert/delete interleavings) and rebuilds can reinsert without
//! re-reading keys; *lookups* compare only the `fp_bits`-wide
//! fingerprint, so the measured false-positive rate is the one the
//! modelled hardware would see. Hardware cost accounting
//! ([`CuckooFilter::storage_bits`], [`SketchAtd::storage_bytes`]) quotes
//! fingerprint bits only.

use cachesim::{Addr, CacheError, CacheGeometry};
use serde::{Deserialize, Serialize};
use std::fmt;
use std::str::FromStr;

use crate::atd::AtdTags;

/// Slots per bucket (the classic (2,4) cuckoo-filter configuration).
const SLOTS_PER_BUCKET: usize = 4;
/// Evictions tolerated before an insert triggers a doubling rebuild.
const MAX_KICKS: usize = 256;
/// Buckets in a fresh filter — deliberately tiny (64 slots) so the
/// autoscaling path is exercised by ordinary workloads, not just tests.
const INITIAL_BUCKETS: usize = 16;
/// Salt separating the fingerprint hash from the bucket hash.
const FP_SALT: u64 = 0xC0DE_F11E_5EED_0001;
/// Salt for the deterministic kick-slot selector.
const KICK_SALT: u64 = 0xC0DE_F11E_5EED_0002;
/// Seed used by every [`SketchAtd`] (per-thread decorrelation comes from
/// the address streams, not the filter hash).
const SKETCH_SEED: u64 = 0x5EED_CAFE_F00D_0003;

/// SWAR 16-bit-lane constants (4 lanes per u64, one per bucket slot):
/// the low bit and the sign bit of every lane.
const LANE_LO: u64 = 0x0001_0001_0001_0001;
const LANE_HI: u64 = 0x8000_8000_8000_8000;

/// The fingerprint widths the hardware model supports.
pub const SUPPORTED_FP_BITS: [u32; 3] = [8, 12, 16];

#[inline]
fn splitmix64(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

// ---------------------------------------------------------------------
// Profiler fidelity
// ---------------------------------------------------------------------

/// Which tag store a profiler's ATD uses: the paper's exact tag rows or
/// the cuckoo-filter sketch with `fp_bits`-wide fingerprints.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub enum ProfilerFidelity {
    /// Full tag comparison ([`AtdTags`], the paper's design).
    #[default]
    Exact,
    /// Cuckoo-filter membership plus a per-way fingerprint sidecar
    /// ([`SketchAtd`]).
    Sketch {
        /// Fingerprint width: 8, 12 or 16 bits.
        fp_bits: u32,
    },
}

impl ProfilerFidelity {
    /// Validate the fingerprint width of a sketch fidelity.
    pub fn validate(self) -> Result<Self, CacheError> {
        match self {
            ProfilerFidelity::Exact => Ok(self),
            ProfilerFidelity::Sketch { fp_bits } => {
                if SUPPORTED_FP_BITS.contains(&fp_bits) {
                    Ok(self)
                } else {
                    Err(CacheError::BadGeometry {
                        reason: format!(
                            "sketch fingerprint width must be 8, 12 or 16 bits, got {fp_bits}"
                        ),
                    })
                }
            }
        }
    }
}

impl fmt::Display for ProfilerFidelity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProfilerFidelity::Exact => write!(f, "exact"),
            ProfilerFidelity::Sketch { fp_bits } => write!(f, "sketch{fp_bits}"),
        }
    }
}

impl FromStr for ProfilerFidelity {
    type Err = String;

    /// Parse the scenario-axis spelling: `exact`, `sketch8`, `sketch12`
    /// or `sketch16`.
    fn from_str(s: &str) -> Result<Self, String> {
        if s == "exact" {
            return Ok(ProfilerFidelity::Exact);
        }
        if let Some(bits) = s.strip_prefix("sketch") {
            let fp_bits: u32 = bits
                .parse()
                .map_err(|_| format!("unknown profiler fidelity '{s}'"))?;
            return ProfilerFidelity::Sketch { fp_bits }
                .validate()
                .map_err(|e| e.to_string());
        }
        Err(format!(
            "unknown profiler fidelity '{s}' (expected exact, sketch8, sketch12 or sketch16)"
        ))
    }
}

// ---------------------------------------------------------------------
// Autoscaling cuckoo filter
// ---------------------------------------------------------------------

/// A deterministic, bucketed, autoscaling cuckoo filter.
///
/// Layout: `buckets x 4` slots, two candidate buckets per key
/// (`i2 = i1 XOR hash(fingerprint)`), `fp_bits`-wide fingerprints.
/// Inserts that exceed the bounded kick loop trigger a doubling rebuild
/// that reinserts every resident entry; all hashing and kick selection
/// is seed-derived, so the same insert/delete sequence always produces
/// the same capacity trajectory.
#[derive(Debug, Clone)]
pub struct CuckooFilter {
    fp_bits: u32,
    fp_mask: u64,
    seed: u64,
    /// `buckets - 1`; buckets is always a power of two.
    bucket_mask: usize,
    /// Full 64-bit key hashes, `bucket * SLOTS_PER_BUCKET + slot`.
    slots: Vec<u64>,
    occupied: Vec<bool>,
    /// One u64 per bucket: the 4 slots' fingerprints in 16-bit lanes,
    /// mirroring `slots` so a membership probe is a single load plus a
    /// SWAR compare instead of four hash reads. Free lanes hold 0 and
    /// are masked off by `occ_lanes`.
    fp_lanes: Vec<u64>,
    /// One u64 per bucket: 0xFFFF in every occupied slot's lane.
    occ_lanes: Vec<u64>,
    len: usize,
    kick_state: u64,
    rebuilds: u32,
}

impl CuckooFilter {
    /// Build an empty filter with the default (deliberately small)
    /// initial capacity. `fp_bits` must be 8, 12 or 16.
    pub fn new(fp_bits: u32, seed: u64) -> Result<Self, CacheError> {
        ProfilerFidelity::Sketch { fp_bits }.validate()?;
        Ok(CuckooFilter {
            fp_bits,
            fp_mask: (1u64 << fp_bits) - 1,
            seed,
            bucket_mask: INITIAL_BUCKETS - 1,
            slots: vec![0; INITIAL_BUCKETS * SLOTS_PER_BUCKET],
            occupied: vec![false; INITIAL_BUCKETS * SLOTS_PER_BUCKET],
            fp_lanes: vec![0; INITIAL_BUCKETS],
            occ_lanes: vec![0; INITIAL_BUCKETS],
            len: 0,
            kick_state: splitmix64(seed ^ KICK_SALT),
            rebuilds: 0,
        })
    }

    /// Fingerprint width in bits.
    pub fn fp_bits(&self) -> u32 {
        self.fp_bits
    }

    /// Resident entries (multiset count).
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the filter holds no entries.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Total slot capacity at the current size.
    pub fn capacity(&self) -> usize {
        (self.bucket_mask + 1) * SLOTS_PER_BUCKET
    }

    /// Doubling rebuilds performed since construction (or [`Self::clear`]).
    pub fn rebuilds(&self) -> u32 {
        self.rebuilds
    }

    /// Hardware storage cost: `fp_bits` plus a valid bit per slot. The
    /// software-side full hashes are a simulator convenience and are not
    /// counted.
    pub fn storage_bits(&self) -> u64 {
        self.capacity() as u64 * u64::from(self.fp_bits + 1)
    }

    /// The full 64-bit hash a key maps to.
    #[inline]
    fn key_hash(&self, key: u64) -> u64 {
        splitmix64(key ^ self.seed)
    }

    /// Fingerprint bits of a hash (taken from the high half so they are
    /// independent of the bucket index bits).
    #[inline]
    fn fingerprint(&self, h: u64) -> u64 {
        (h >> 32) & self.fp_mask
    }

    /// The fingerprint a key would be stored under (for sidecars).
    #[inline]
    pub fn key_fingerprint(&self, key: u64) -> u16 {
        self.fingerprint(self.key_hash(key)) as u16
    }

    #[inline]
    fn home_bucket(&self, h: u64) -> usize {
        (h as usize) & self.bucket_mask
    }

    /// The partner bucket: `bucket XOR hash(fingerprint)`, an involution
    /// so either bucket recovers the other.
    #[inline]
    fn alt_bucket(&self, bucket: usize, fp: u64) -> usize {
        bucket ^ (splitmix64(fp ^ FP_SALT) as usize & self.bucket_mask)
    }

    /// Mirror a placement into the SWAR lane planes.
    #[inline]
    fn set_slot(&mut self, bucket: usize, slot: usize, h: u64) {
        let idx = bucket * SLOTS_PER_BUCKET + slot;
        self.slots[idx] = h;
        self.occupied[idx] = true;
        let sh = (slot as u32) * 16;
        self.fp_lanes[bucket] =
            (self.fp_lanes[bucket] & !(0xFFFFu64 << sh)) | (self.fingerprint(h) << sh);
        self.occ_lanes[bucket] |= 0xFFFFu64 << sh;
    }

    /// Vacate a slot in both the hash plane and the SWAR lanes.
    #[inline]
    fn clear_slot(&mut self, bucket: usize, slot: usize) {
        self.occupied[bucket * SLOTS_PER_BUCKET + slot] = false;
        let sh = (slot as u32) * 16;
        self.fp_lanes[bucket] &= !(0xFFFFu64 << sh);
        self.occ_lanes[bucket] &= !(0xFFFFu64 << sh);
    }

    #[inline]
    fn next_kick(&mut self) -> u64 {
        // xorshift64: deterministic, seed-derived, part of filter state.
        let mut x = self.kick_state;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.kick_state = x;
        x
    }

    /// Try to place `h` in a free slot of `bucket`.
    #[inline]
    fn try_place(&mut self, bucket: usize, h: u64) -> bool {
        let base = bucket * SLOTS_PER_BUCKET;
        for s in 0..SLOTS_PER_BUCKET {
            if !self.occupied[base + s] {
                self.set_slot(bucket, s, h);
                return true;
            }
        }
        false
    }

    /// Place `h`, kicking up to [`MAX_KICKS`] entries between their two
    /// legal buckets. On success increments `len` and returns `None`; on
    /// bound exhaustion returns the hash left in hand (the table stays
    /// consistent: every resident hash is still in one of its two
    /// buckets).
    fn place_bounded(&mut self, h: u64) -> Option<u64> {
        let i1 = self.home_bucket(h);
        let i2 = self.alt_bucket(i1, self.fingerprint(h));
        if self.try_place(i1, h) || self.try_place(i2, h) {
            self.len += 1;
            return None;
        }
        let mut cur = h;
        let r = self.next_kick();
        let mut bucket = if r & 4 == 0 { i1 } else { i2 };
        for _ in 0..MAX_KICKS {
            let slot = (self.next_kick() as usize) % SLOTS_PER_BUCKET;
            let evicted = self.slots[bucket * SLOTS_PER_BUCKET + slot];
            self.set_slot(bucket, slot, cur);
            cur = evicted;
            // The evicted entry's other legal bucket.
            bucket = self.alt_bucket(bucket, self.fingerprint(cur));
            if self.try_place(bucket, cur) {
                self.len += 1;
                return None;
            }
        }
        Some(cur)
    }

    /// Insert a key (multiset semantics: n inserts need n deletes).
    /// Autoscales by doubling when the kick loop is exhausted.
    pub fn insert(&mut self, key: u64) {
        let h = self.key_hash(key);
        let Some(pending) = self.place_bounded(h) else {
            return;
        };
        // Kick bound hit: snapshot every resident hash plus the one in
        // hand, then double until the whole set reinserts cleanly.
        let mut hashes: Vec<u64> = Vec::with_capacity(self.len + 1);
        for i in 0..self.slots.len() {
            if self.occupied[i] {
                hashes.push(self.slots[i]);
            }
        }
        hashes.push(pending);
        loop {
            let buckets = (self.bucket_mask + 1) * 2;
            self.bucket_mask = buckets - 1;
            self.slots = vec![0; buckets * SLOTS_PER_BUCKET];
            self.occupied = vec![false; buckets * SLOTS_PER_BUCKET];
            self.fp_lanes = vec![0; buckets];
            self.occ_lanes = vec![0; buckets];
            self.len = 0;
            self.rebuilds += 1;
            if hashes.iter().all(|&hh| self.place_bounded(hh).is_none()) {
                return;
            }
        }
    }

    /// Fingerprint-only membership probe — exactly what the modelled
    /// hardware does, so false positives are possible (bounded by
    /// [`analytic_fp_bound`]) but false negatives are not. A bucket is
    /// one SWAR lane compare (a single u64 against the broadcast
    /// fingerprint), so the common all-miss probe touches two words, not
    /// eight slot hashes; the home bucket is checked before the partner
    /// bucket's hash is even computed, which keeps hit probes at one
    /// `splitmix64`.
    #[inline]
    pub fn contains(&self, key: u64) -> bool {
        let h = self.key_hash(key);
        let fp = self.fingerprint(h);
        let bcast = fp.wrapping_mul(LANE_LO);
        let i1 = self.home_bucket(h);
        if self.bucket_has_fp(i1, bcast) {
            return true;
        }
        let i2 = self.alt_bucket(i1, fp);
        i2 != i1 && self.bucket_has_fp(i2, bcast)
    }

    /// SWAR zero-lane detect: a 16-bit lane of `fp_lanes ^ bcast` is zero
    /// exactly where the stored fingerprint matches, and `occ_lanes`
    /// masks the free slots (whose lanes hold 0 and would false-match a
    /// zero fingerprint).
    #[inline]
    fn bucket_has_fp(&self, bucket: usize, fp_bcast: u64) -> bool {
        let diff = self.fp_lanes[bucket] ^ fp_bcast;
        let zero = diff.wrapping_sub(LANE_LO) & !diff & LANE_HI;
        zero & self.occ_lanes[bucket] != 0
    }

    /// Remove one copy of a key. Matches the full stored hash (the
    /// hardware analogue deletes the entry it just evicted, whose
    /// identity it knows), so a resident key is always found and
    /// removal never corrupts another entry. Returns whether a copy was
    /// removed.
    pub fn delete(&mut self, key: u64) -> bool {
        let h = self.key_hash(key);
        let i1 = self.home_bucket(h);
        let i2 = self.alt_bucket(i1, self.fingerprint(h));
        for bucket in [i1, i2] {
            let base = bucket * SLOTS_PER_BUCKET;
            for s in 0..SLOTS_PER_BUCKET {
                if self.occupied[base + s] && self.slots[base + s] == h {
                    self.clear_slot(bucket, s);
                    self.len -= 1;
                    return true;
                }
            }
            if i2 == i1 {
                break;
            }
        }
        false
    }

    /// Empty the filter, keeping its grown capacity; the kick selector
    /// is re-seeded so cleared filters behave identically to fresh ones
    /// of the same size.
    pub fn clear(&mut self) {
        self.occupied.iter_mut().for_each(|o| *o = false);
        self.fp_lanes.iter_mut().for_each(|l| *l = 0);
        self.occ_lanes.iter_mut().for_each(|l| *l = 0);
        self.len = 0;
        self.kick_state = splitmix64(self.seed ^ KICK_SALT);
    }
}

/// The textbook false-positive bound of a (2, 4) cuckoo filter: up to
/// `2 x 4` candidate slots may match an `fp_bits`-wide fingerprint.
pub fn analytic_fp_bound(fp_bits: u32) -> f64 {
    (2 * SLOTS_PER_BUCKET) as f64 / (1u64 << fp_bits) as f64
}

// ---------------------------------------------------------------------
// TagStore: the interface AtdTags and SketchAtd share
// ---------------------------------------------------------------------

/// Tag bookkeeping of one sampled ATD, at either fidelity. The
/// profilers only use this surface, so swapping the paper's exact tag
/// rows for the sketch is invisible to the replacement-metadata logic.
pub trait TagStore {
    /// The L2 geometry this ATD mirrors.
    fn geometry(&self) -> &CacheGeometry;
    /// One in how many sets is sampled.
    fn sample_ratio(&self) -> usize;
    /// Number of sets actually present in the ATD.
    fn sampled_sets(&self) -> usize;
    /// If `addr`'s set is sampled, its ATD-local set index.
    fn sampled_set(&self, addr: Addr) -> Option<usize>;
    /// Tag of an address (same tag function as the L2).
    fn tag(&self, addr: Addr) -> u64;
    /// Find the way holding `tag` in ATD set `atd_set`.
    fn lookup(&self, atd_set: usize, tag: u64) -> Option<usize>;
    /// First invalid way of a set, if any.
    fn invalid_way(&self, atd_set: usize) -> Option<usize>;
    /// Install `tag` into `(atd_set, way)`, displacing any occupant.
    fn fill(&mut self, atd_set: usize, way: usize, tag: u64);
    /// Hardware storage cost in bytes for a given address width.
    fn storage_bytes(&self, addr_bits: u32) -> u64;
    /// Invalidate everything.
    fn reset(&mut self);
}

impl TagStore for AtdTags {
    fn geometry(&self) -> &CacheGeometry {
        AtdTags::geometry(self)
    }
    fn sample_ratio(&self) -> usize {
        AtdTags::sample_ratio(self)
    }
    fn sampled_sets(&self) -> usize {
        AtdTags::sampled_sets(self)
    }
    fn sampled_set(&self, addr: Addr) -> Option<usize> {
        AtdTags::sampled_set(self, addr)
    }
    fn tag(&self, addr: Addr) -> u64 {
        AtdTags::tag(self, addr)
    }
    fn lookup(&self, atd_set: usize, tag: u64) -> Option<usize> {
        AtdTags::lookup(self, atd_set, tag)
    }
    fn invalid_way(&self, atd_set: usize) -> Option<usize> {
        AtdTags::invalid_way(self, atd_set)
    }
    fn fill(&mut self, atd_set: usize, way: usize, tag: u64) {
        AtdTags::fill(self, atd_set, way, tag)
    }
    fn storage_bytes(&self, addr_bits: u32) -> u64 {
        AtdTags::storage_bytes(self, addr_bits)
    }
    fn reset(&mut self) {
        AtdTags::reset(self)
    }
}

// ---------------------------------------------------------------------
// SketchAtd: filter membership + exact per-way fingerprint sidecar
// ---------------------------------------------------------------------

/// The sketch-fidelity tag store.
///
/// Membership ("is this (set, tag) resident?") lives in one
/// [`CuckooFilter`] per thread; way resolution ("which way?") uses an
/// exact `fp_bits`-wide fingerprint sidecar per line, the hardware
/// replacement for the 47-bit tag word. Fingerprint collisions within a
/// set surface as wrong-way hits — the approximation the error-bound
/// suite quantifies — but a resident line always hits (no false
/// negatives): fills record the exact fingerprint the filter stores.
///
/// The software-only `resident_key` array remembers each line's full
/// filter key so a fill can delete the displaced occupant from the
/// filter; hardware gets this for free (the evicted line's identity is
/// on the fill path) and the cost accounting excludes it.
#[derive(Debug, Clone)]
pub struct SketchAtd {
    geom: CacheGeometry,
    sample_ratio: usize,
    sampled_sets: usize,
    filter: CuckooFilter,
    /// `fp_bits`-wide fingerprint per `(atd_set, way)` line.
    way_fp: Vec<u16>,
    valid: Vec<bool>,
    /// Software-only: the filter key resident in each line, for delete.
    resident_key: Vec<u64>,
}

impl SketchAtd {
    /// Build a sketch ATD for a cache of shape `geom`, sampling one in
    /// `sample_ratio` sets, with `fp_bits`-wide fingerprints (8/12/16).
    pub fn new(geom: CacheGeometry, sample_ratio: usize, fp_bits: u32) -> Result<Self, CacheError> {
        if sample_ratio < 1 {
            return Err(CacheError::BadGeometry {
                reason: "ATD sample ratio must be at least 1".into(),
            });
        }
        if geom.num_sets() < sample_ratio {
            return Err(CacheError::BadGeometry {
                reason: format!(
                    "ATD sample ratio {sample_ratio} leaves no sampled set \
                     ({} sets)",
                    geom.num_sets()
                ),
            });
        }
        let filter = CuckooFilter::new(fp_bits, SKETCH_SEED)?;
        let sampled_sets = geom.num_sets() / sample_ratio;
        let lines = sampled_sets * geom.assoc();
        Ok(SketchAtd {
            geom,
            sample_ratio,
            sampled_sets,
            filter,
            way_fp: vec![0; lines],
            valid: vec![false; lines],
            resident_key: vec![0; lines],
        })
    }

    /// Fingerprint width in bits.
    pub fn fp_bits(&self) -> u32 {
        self.filter.fp_bits()
    }

    /// The membership filter (for inspection and cost accounting).
    pub fn filter(&self) -> &CuckooFilter {
        &self.filter
    }

    /// Filter key of an `(atd_set, tag)` line.
    #[inline]
    fn key(atd_set: usize, tag: u64) -> u64 {
        tag ^ (atd_set as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)
    }
}

impl TagStore for SketchAtd {
    fn geometry(&self) -> &CacheGeometry {
        &self.geom
    }

    fn sample_ratio(&self) -> usize {
        self.sample_ratio
    }

    fn sampled_sets(&self) -> usize {
        self.sampled_sets
    }

    #[inline]
    fn sampled_set(&self, addr: Addr) -> Option<usize> {
        let set = self.geom.set_index(addr);
        if set.is_multiple_of(self.sample_ratio) {
            Some(set / self.sample_ratio)
        } else {
            None
        }
    }

    #[inline]
    fn tag(&self, addr: Addr) -> u64 {
        self.geom.tag(addr)
    }

    #[inline]
    fn lookup(&self, atd_set: usize, tag: u64) -> Option<usize> {
        let key = Self::key(atd_set, tag);
        // Fast path: a filter miss is authoritative (no false negatives),
        // so most ATD misses never touch the per-way sidecar.
        if !self.filter.contains(key) {
            return None;
        }
        let fp = self.filter.key_fingerprint(key);
        let base = atd_set * self.geom.assoc();
        (0..self.geom.assoc()).find(|&w| self.valid[base + w] && self.way_fp[base + w] == fp)
    }

    #[inline]
    fn invalid_way(&self, atd_set: usize) -> Option<usize> {
        let base = atd_set * self.geom.assoc();
        (0..self.geom.assoc()).find(|&w| !self.valid[base + w])
    }

    #[inline]
    fn fill(&mut self, atd_set: usize, way: usize, tag: u64) {
        let idx = atd_set * self.geom.assoc() + way;
        if self.valid[idx] {
            // Evict the displaced occupant from the membership filter.
            self.filter.delete(self.resident_key[idx]);
        }
        let key = Self::key(atd_set, tag);
        self.filter.insert(key);
        self.way_fp[idx] = self.filter.key_fingerprint(key);
        self.resident_key[idx] = key;
        self.valid[idx] = true;
    }

    /// Hardware cost: `fp_bits + 1` bits per sidecar line plus the
    /// filter slots — independent of the address width the exact ATD
    /// pays tag bits for.
    fn storage_bytes(&self, _addr_bits: u32) -> u64 {
        let lines = (self.sampled_sets * self.geom.assoc()) as u64;
        let sidecar_bits = lines * u64::from(self.fp_bits() + 1);
        (sidecar_bits + self.filter.storage_bits()).div_ceil(8)
    }

    fn reset(&mut self) {
        self.valid.iter_mut().for_each(|v| *v = false);
        self.filter.clear();
    }
}

// ---------------------------------------------------------------------
// TagStoreState: the enum the profilers dispatch over
// ---------------------------------------------------------------------

/// Enum dispatch over the two tag stores, selected by
/// [`ProfilerFidelity`].
#[derive(Debug, Clone)]
pub enum TagStoreState {
    /// The paper's exact tag rows.
    Exact(AtdTags),
    /// The cuckoo-filter sketch.
    Sketch(SketchAtd),
}

impl TagStoreState {
    /// Build the tag store a fidelity asks for.
    pub fn try_new(
        geom: CacheGeometry,
        sample_ratio: usize,
        fidelity: ProfilerFidelity,
    ) -> Result<Self, CacheError> {
        match fidelity.validate()? {
            ProfilerFidelity::Exact => Ok(TagStoreState::Exact(AtdTags::new(geom, sample_ratio)?)),
            ProfilerFidelity::Sketch { fp_bits } => Ok(TagStoreState::Sketch(SketchAtd::new(
                geom,
                sample_ratio,
                fp_bits,
            )?)),
        }
    }

    /// The fidelity this store was built with.
    pub fn fidelity(&self) -> ProfilerFidelity {
        match self {
            TagStoreState::Exact(_) => ProfilerFidelity::Exact,
            TagStoreState::Sketch(s) => ProfilerFidelity::Sketch {
                fp_bits: s.fp_bits(),
            },
        }
    }
}

impl TagStore for TagStoreState {
    fn geometry(&self) -> &CacheGeometry {
        match self {
            TagStoreState::Exact(t) => t.geometry(),
            TagStoreState::Sketch(t) => t.geometry(),
        }
    }

    fn sample_ratio(&self) -> usize {
        match self {
            TagStoreState::Exact(t) => TagStore::sample_ratio(t),
            TagStoreState::Sketch(t) => t.sample_ratio(),
        }
    }

    fn sampled_sets(&self) -> usize {
        match self {
            TagStoreState::Exact(t) => TagStore::sampled_sets(t),
            TagStoreState::Sketch(t) => t.sampled_sets(),
        }
    }

    #[inline]
    fn sampled_set(&self, addr: Addr) -> Option<usize> {
        match self {
            TagStoreState::Exact(t) => t.sampled_set(addr),
            TagStoreState::Sketch(t) => t.sampled_set(addr),
        }
    }

    #[inline]
    fn tag(&self, addr: Addr) -> u64 {
        match self {
            TagStoreState::Exact(t) => t.tag(addr),
            TagStoreState::Sketch(t) => t.tag(addr),
        }
    }

    #[inline]
    fn lookup(&self, atd_set: usize, tag: u64) -> Option<usize> {
        match self {
            TagStoreState::Exact(t) => t.lookup(atd_set, tag),
            TagStoreState::Sketch(t) => t.lookup(atd_set, tag),
        }
    }

    #[inline]
    fn invalid_way(&self, atd_set: usize) -> Option<usize> {
        match self {
            TagStoreState::Exact(t) => t.invalid_way(atd_set),
            TagStoreState::Sketch(t) => t.invalid_way(atd_set),
        }
    }

    #[inline]
    fn fill(&mut self, atd_set: usize, way: usize, tag: u64) {
        match self {
            TagStoreState::Exact(t) => t.fill(atd_set, way, tag),
            TagStoreState::Sketch(t) => t.fill(atd_set, way, tag),
        }
    }

    fn storage_bytes(&self, addr_bits: u32) -> u64 {
        match self {
            TagStoreState::Exact(t) => TagStore::storage_bytes(t, addr_bits),
            TagStoreState::Sketch(t) => t.storage_bytes(addr_bits),
        }
    }

    fn reset(&mut self) {
        match self {
            TagStoreState::Exact(t) => TagStore::reset(t),
            TagStoreState::Sketch(t) => TagStore::reset(t),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn filter(fp_bits: u32) -> CuckooFilter {
        CuckooFilter::new(fp_bits, 42).unwrap()
    }

    #[test]
    fn insert_then_contains() {
        let mut f = filter(16);
        for k in 0..40u64 {
            f.insert(k);
        }
        assert_eq!(f.len(), 40);
        for k in 0..40u64 {
            assert!(f.contains(k), "key {k} lost");
        }
    }

    #[test]
    fn autoscaling_grows_past_initial_capacity() {
        let mut f = filter(12);
        let initial = f.capacity();
        for k in 0..1000u64 {
            f.insert(k);
        }
        assert!(f.capacity() > initial, "filter never grew");
        assert!(f.rebuilds() >= 1);
        for k in 0..1000u64 {
            assert!(f.contains(k), "key {k} lost across rebuilds");
        }
    }

    #[test]
    fn delete_removes_one_copy() {
        let mut f = filter(8);
        f.insert(7);
        f.insert(7);
        assert!(f.delete(7));
        assert!(f.contains(7), "one copy must remain");
        assert!(f.delete(7));
        assert_eq!(f.len(), 0);
        assert!(!f.delete(7), "nothing left to delete");
    }

    #[test]
    fn growth_trajectory_is_deterministic() {
        let mut a = filter(8);
        let mut b = filter(8);
        let mut caps_a = Vec::new();
        let mut caps_b = Vec::new();
        for k in 0..3000u64 {
            a.insert(k.wrapping_mul(0x9E37_79B9));
            caps_a.push(a.capacity());
            b.insert(k.wrapping_mul(0x9E37_79B9));
            caps_b.push(b.capacity());
        }
        assert_eq!(caps_a, caps_b);
    }

    #[test]
    fn bad_fp_bits_is_a_one_line_error() {
        let err = CuckooFilter::new(9, 0).unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("8, 12 or 16"), "unexpected error: {msg}");
        assert!(!msg.contains('\n'), "error must be one line");
    }

    #[test]
    fn fidelity_round_trips_through_strings() {
        for s in ["exact", "sketch8", "sketch12", "sketch16"] {
            let f: ProfilerFidelity = s.parse().unwrap();
            assert_eq!(f.to_string(), s);
        }
        assert!("sketch9".parse::<ProfilerFidelity>().is_err());
        assert!("bogus".parse::<ProfilerFidelity>().is_err());
    }

    fn l2_geom() -> CacheGeometry {
        CacheGeometry::new(2 * 1024 * 1024, 16, 128).unwrap()
    }

    #[test]
    fn sketch_atd_mirrors_exact_lookup_fill() {
        let mut atd = SketchAtd::new(l2_geom(), 32, 16).unwrap();
        let addr = 0x40_0000u64;
        let set = atd.sampled_set(addr).unwrap();
        let tag = atd.tag(addr);
        assert_eq!(atd.lookup(set, tag), None);
        let way = atd.invalid_way(set).unwrap();
        atd.fill(set, way, tag);
        assert_eq!(atd.lookup(set, tag), Some(way));
    }

    #[test]
    fn sketch_fill_displaces_the_old_occupant() {
        let mut atd = SketchAtd::new(l2_geom(), 32, 16).unwrap();
        atd.fill(0, 0, 111);
        let old_len = atd.filter().len();
        atd.fill(0, 0, 222);
        assert_eq!(atd.filter().len(), old_len, "displaced key must leave");
        assert_eq!(atd.lookup(0, 222), Some(0));
        assert_eq!(atd.lookup(0, 111), None, "111 was displaced");
    }

    #[test]
    fn sketch_storage_beats_exact_tags() {
        let exact = AtdTags::new(l2_geom(), 32).unwrap();
        let sketch = SketchAtd::new(l2_geom(), 32, 8).unwrap();
        let e = TagStore::storage_bytes(&exact, 64);
        let s = sketch.storage_bytes(64);
        assert!(
            s * 3 < e,
            "sketch8 should cut ATD bytes >3x: exact {e} sketch {s}"
        );
    }

    #[test]
    fn sketch_reset_clears_membership() {
        let mut atd = SketchAtd::new(l2_geom(), 32, 12).unwrap();
        atd.fill(0, 0, 42);
        TagStore::reset(&mut atd);
        assert_eq!(atd.lookup(0, 42), None);
        assert!(atd.filter().is_empty());
    }

    #[test]
    fn bad_sample_ratio_is_a_one_line_error() {
        let g = CacheGeometry::new(4096, 4, 64).unwrap(); // 16 sets
        let err = SketchAtd::new(g, 32, 8).unwrap_err().to_string();
        assert!(err.contains("no sampled set"), "unexpected error: {err}");
        assert!(!err.contains('\n'));
    }
}
