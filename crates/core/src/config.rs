//! Configuration of a complete cache-partitioning system, named with the
//! paper's acronyms.
//!
//! A configuration acronym has three parts (Section V-B):
//!
//! * enforcement: `C` = per-set owner counters, `M` = global replacement
//!   masks (or BT up/down vectors);
//! * replacement/profiling policy: `L` = true LRU, `N` = NRU, `BT` =
//!   binary tree;
//! * for NRU, the eSDH scaling factor: `1.0`, `0.75` or `0.5`.
//!
//! The paper's evaluated configurations: `C-L` (baseline), `M-L`,
//! `M-1.0N`, `M-0.75N`, `M-0.5N`, `M-BT`.

use crate::sketch::ProfilerFidelity;
use cachesim::PolicyKind;
use serde::{Deserialize, Serialize};
use std::fmt;

/// How the selected partition is enforced at the L2.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum EnforcementStyle {
    /// Per-set owner counters (`C`): quota comparison against occupancy.
    OwnerCounters,
    /// Global replacement masks (`M`); for BT this means the up/down
    /// vectors (strict mode) or the generalized masked tree walk.
    Masks,
}

/// How the NRU profiler updates the eSDH on a hit with the used bit set.
///
/// Section III-A is ambiguous: it both says "we increase both SDH registers
/// r1 and r2" and later "we assume the stack distance to be S×U". The
/// scaled point update is the only reading consistent with the scaled-eSDH
/// definition, so it is the default; the smear update is kept as an
/// ablation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum NruUpdateMode {
    /// Increment the single register `r_{ceil(S*U)}` (default).
    #[default]
    Scaled,
    /// Increment every register `r_1 ..= r_U` (the literal "increase both
    /// r1 and r2" reading).
    Smear,
}

/// Which partition-selection algorithm the controller runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum Selector {
    /// Exact dynamic program minimising total predicted misses (default —
    /// eSDH curves need not be convex, where greedy can be suboptimal).
    #[default]
    ExactDp,
    /// Greedy marginal-gain allocation (UCP-lookahead style).
    Greedy,
}

/// The optimisation target of the partitioning policy. The paper uses
/// MinMisses throughout and notes that "further goals can be reached,
/// when the policy is modified to favor fairness or QoS" — the fairness
/// objective implements that extension.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum Objective {
    /// Minimise the total predicted miss count (the paper's policy).
    #[default]
    MinMisses,
    /// Minimise the maximum per-thread relative miss increase
    /// (fairness-oriented minimax).
    Fairness,
}

/// Full configuration of a dynamic CPA.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CpaConfig {
    /// Replacement policy of the L2 *and* of the profiling ATDs (the paper
    /// always pairs them).
    pub policy: PolicyKind,
    /// Enforcement mechanism.
    pub enforcement: EnforcementStyle,
    /// NRU eSDH scaling factor `S` (ignored for LRU/BT).
    pub nru_scale: f64,
    /// NRU eSDH update mode (ignored for LRU/BT).
    pub nru_update: NruUpdateMode,
    /// For BT + Masks: restrict partitions to aligned subtrees enforced by
    /// the paper's up/down vectors (`true`), or allow arbitrary contiguous
    /// masks via the generalized mask-guided tree walk (`false`, default).
    ///
    /// The paper's `log2(A)`-bit up/down vectors can only express
    /// power-of-two aligned subtrees, yet its MinMisses policy emits
    /// arbitrary way counts; rounding every allocation to a subtree
    /// throws away most of the partitioning benefit (measurably so — see
    /// the `ablation` binary). The generalized walk selects the identical
    /// victim as the vectors whenever the allocation *is* an aligned
    /// subtree, and extends victim search naturally otherwise, so it is
    /// the default.
    pub bt_strict_vectors: bool,
    /// Partition-selection algorithm.
    pub selector: Selector,
    /// Optimisation target.
    pub objective: Objective,
    /// Adapt the NRU eSDH scaling factor online from miss feedback (the
    /// paper's future-work direction: "We leave further estimation
    /// accuracy research for our future work"). Ignored for LRU/BT.
    pub adaptive_nru_scale: bool,
    /// Repartition interval in cycles (paper: 1 M).
    pub interval_cycles: u64,
    /// ATD set-sampling ratio (paper: 32).
    pub sample_ratio: usize,
    /// Minimum average SDH samples per thread before a repartition is
    /// acted on; below this the controller keeps the current partition
    /// (guards the scaled-down runs against deciding off a cold, noisy
    /// histogram).
    pub min_samples_per_thread: u64,
    /// Tag-store fidelity of the profiling ATDs: `None`/`Exact` keeps the
    /// paper's full tag rows, `Sketch { fp_bits }` swaps in the
    /// cuckoo-filter membership sketch ([`crate::sketch::SketchAtd`]).
    /// Optional so serialized configs from before the sketch existed
    /// still parse.
    pub fidelity: Option<ProfilerFidelity>,
}

impl CpaConfig {
    fn base(policy: PolicyKind, enforcement: EnforcementStyle) -> Self {
        CpaConfig {
            policy,
            enforcement,
            nru_scale: 0.75,
            nru_update: NruUpdateMode::Scaled,
            bt_strict_vectors: false,
            selector: Selector::ExactDp,
            objective: Objective::MinMisses,
            adaptive_nru_scale: false,
            interval_cycles: 1_000_000,
            sample_ratio: 32,
            min_samples_per_thread: 32,
            fidelity: None,
        }
    }

    /// The effective tag-store fidelity (`None` means [`ProfilerFidelity::Exact`]).
    pub fn fidelity(&self) -> ProfilerFidelity {
        self.fidelity.unwrap_or(ProfilerFidelity::Exact)
    }

    /// The paper's baseline `C-L`: owner counters + true LRU.
    pub fn c_l() -> Self {
        Self::base(PolicyKind::Lru, EnforcementStyle::OwnerCounters)
    }

    /// `M-L`: global masks + true LRU.
    pub fn m_l() -> Self {
        Self::base(PolicyKind::Lru, EnforcementStyle::Masks)
    }

    /// `M-<scale>N`: masks + NRU with a given eSDH scaling factor.
    pub fn m_nru(scale: f64) -> Self {
        assert!(scale > 0.0 && scale <= 1.0);
        CpaConfig {
            nru_scale: scale,
            ..Self::base(PolicyKind::Nru, EnforcementStyle::Masks)
        }
    }

    /// `M-BT`: up/down vectors + binary tree.
    pub fn m_bt() -> Self {
        Self::base(PolicyKind::Bt, EnforcementStyle::Masks)
    }

    /// All six configurations of Figure 7, in the figure's order.
    pub fn figure7_set() -> Vec<CpaConfig> {
        vec![
            Self::c_l(),
            Self::m_l(),
            Self::m_nru(1.0),
            Self::m_nru(0.75),
            Self::m_nru(0.5),
            Self::m_bt(),
        ]
    }

    /// The paper-style acronym (`C-L`, `M-0.75N`, `M-BT`, …).
    pub fn acronym(&self) -> String {
        let enf = match self.enforcement {
            EnforcementStyle::OwnerCounters => "C",
            EnforcementStyle::Masks => "M",
        };
        match self.policy {
            PolicyKind::Lru => format!("{enf}-L"),
            PolicyKind::Bt => format!("{enf}-BT"),
            PolicyKind::Nru => format!("{enf}-{}N", format_scale(self.nru_scale)),
            PolicyKind::Random => format!("{enf}-R"),
            PolicyKind::Fifo => format!("{enf}-F"),
        }
    }

    /// Parse a paper-style acronym. Thin wrapper over the single scheme
    /// grammar ([`crate::scheme::Scheme`]); `None` for bare policies and
    /// invalid combinations alike — parse a `Scheme` instead when the
    /// error message matters.
    pub fn from_acronym(s: &str) -> Option<CpaConfig> {
        s.parse::<crate::scheme::Scheme>().ok()?.cpa().cloned()
    }
}

fn format_scale(s: f64) -> String {
    if (s - 1.0).abs() < 1e-9 {
        "1.0".into()
    } else if (s - 0.75).abs() < 1e-9 {
        "0.75".into()
    } else if (s - 0.5).abs() < 1e-9 {
        "0.5".into()
    } else {
        format!("{s}")
    }
}

impl fmt::Display for CpaConfig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.acronym())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn acronyms_match_the_paper() {
        assert_eq!(CpaConfig::c_l().acronym(), "C-L");
        assert_eq!(CpaConfig::m_l().acronym(), "M-L");
        assert_eq!(CpaConfig::m_nru(1.0).acronym(), "M-1.0N");
        assert_eq!(CpaConfig::m_nru(0.75).acronym(), "M-0.75N");
        assert_eq!(CpaConfig::m_nru(0.5).acronym(), "M-0.5N");
        assert_eq!(CpaConfig::m_bt().acronym(), "M-BT");
    }

    #[test]
    fn figure7_set_order() {
        let names: Vec<_> = CpaConfig::figure7_set()
            .iter()
            .map(|c| c.acronym())
            .collect();
        assert_eq!(
            names,
            vec!["C-L", "M-L", "M-1.0N", "M-0.75N", "M-0.5N", "M-BT"]
        );
    }

    #[test]
    fn parse_round_trips() {
        for c in CpaConfig::figure7_set() {
            let parsed = CpaConfig::from_acronym(&c.acronym()).unwrap();
            assert_eq!(parsed.acronym(), c.acronym());
            assert_eq!(parsed.policy, c.policy);
            assert_eq!(parsed.enforcement, c.enforcement);
        }
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(CpaConfig::from_acronym("X-L").is_none());
        assert!(CpaConfig::from_acronym("M-2.0N").is_none());
        assert!(CpaConfig::from_acronym("ML").is_none());
        assert!(CpaConfig::from_acronym("M-Q").is_none());
    }

    #[test]
    fn defaults_match_the_paper() {
        let c = CpaConfig::c_l();
        assert_eq!(c.interval_cycles, 1_000_000);
        assert_eq!(c.sample_ratio, 32);
        assert_eq!(c.selector, Selector::ExactDp);
    }

    #[test]
    fn display_uses_acronym() {
        assert_eq!(format!("{}", CpaConfig::m_nru(0.75)), "M-0.75N");
    }
}
