//! Property-based tests of the profiling logics and the SDH arithmetic.

use cachesim::CacheGeometry;
use plru_core::profiler::{BtProfiler, LruProfiler, NruProfiler};
use plru_core::{NruUpdateMode, Profiler, Sdh};
use proptest::prelude::*;

fn tiny_geom() -> CacheGeometry {
    // 8 sets x 8 ways x 64 B, fully sampled.
    CacheGeometry::new(4096, 8, 64).unwrap()
}

fn addr(set: usize, n: u64) -> u64 {
    ((n << 3) | set as u64) << 6
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// SDH bookkeeping: total recorded accesses equal the register sum,
    /// and the miss curve starts at the total and ends at the miss count.
    #[test]
    fn sdh_register_accounting(
        hits in proptest::collection::vec(1usize..=8, 0..500),
        misses in 0u64..200,
    ) {
        let mut s = Sdh::new(8);
        for &d in &hits {
            s.record(d);
        }
        for _ in 0..misses {
            s.record_miss();
        }
        prop_assert_eq!(s.total(), hits.len() as u64 + misses);
        let curve = s.miss_curve();
        prop_assert_eq!(curve[0], s.total());
        prop_assert_eq!(curve[8], misses);
    }

    /// Decay halves the predicted misses at every way count (within
    /// truncation error bounded by the register count).
    #[test]
    fn decay_halves_the_curve(
        hits in proptest::collection::vec(1usize..=8, 0..500),
    ) {
        let mut s = Sdh::new(8);
        for &d in &hits {
            s.record(d);
        }
        let before = s.miss_curve();
        s.decay();
        let after = s.miss_curve();
        for w in 0..=8 {
            let half = before[w] / 2;
            prop_assert!(after[w] <= half + 9, "way {w}: {} vs {}", after[w], half);
            prop_assert!(after[w] + 9 >= half.saturating_sub(9));
        }
    }

    /// Every profiler observes every access of a fully-sampled ATD, and
    /// the SDH total plus un-recorded NRU hits equals the observation
    /// count.
    #[test]
    fn observation_counts_are_complete(
        trace in proptest::collection::vec((0usize..8, 0u64..20), 1..600),
    ) {
        let mut lru = LruProfiler::new(tiny_geom(), 1);
        let mut bt = BtProfiler::new(tiny_geom(), 1);
        for &(set, n) in &trace {
            lru.observe(addr(set, n));
            bt.observe(addr(set, n));
        }
        prop_assert_eq!(lru.observed(), trace.len() as u64);
        prop_assert_eq!(bt.observed(), trace.len() as u64);
        // LRU and BT record every observation (hit or miss).
        prop_assert_eq!(lru.sdh().total(), trace.len() as u64);
        prop_assert_eq!(bt.sdh().total(), trace.len() as u64);
    }

    /// The NRU profiler's recorded total never exceeds its observations
    /// (used-bit-0 hits are deliberately unrecorded) and its miss register
    /// matches the LRU profiler's exactly on eviction-free traces.
    #[test]
    fn nru_profiler_total_is_bounded(
        trace in proptest::collection::vec((0usize..8, 0u64..8), 1..600),
        scale in prop::sample::select(vec![1.0f64, 0.75, 0.5]),
    ) {
        let mut nru = NruProfiler::new(tiny_geom(), 1, scale, NruUpdateMode::Scaled);
        let mut lru = LruProfiler::new(tiny_geom(), 1);
        for &(set, n) in &trace {
            nru.observe(addr(set, n));
            lru.observe(addr(set, n));
        }
        prop_assert!(nru.sdh().total() <= nru.observed());
        // 8 lines per set at 8 ways: no evictions, so ATD misses are
        // compulsory and identical across policies.
        prop_assert_eq!(nru.sdh().register(9), lru.sdh().register(9));
    }

    /// Scaled distances honour the paper's ceiling rule for every U.
    #[test]
    fn scaled_distance_ceiling_rule(u in 1usize..=16) {
        let geom = CacheGeometry::new(8192, 16, 64).unwrap();
        type ExpectedDistance = fn(usize) -> usize;
        let cases: Vec<(f64, ExpectedDistance)> = vec![(1.0, |u| u), (0.5, |u| u.div_ceil(2))];
        for (s, expected) in cases {
            let p = NruProfiler::new(geom, 1, s, NruUpdateMode::Scaled);
            prop_assert_eq!(p.scaled_distance(u), expected(u));
        }
    }

    /// Profiler reset is total: a reset profiler replays identically.
    #[test]
    fn reset_makes_profilers_replayable(
        trace in proptest::collection::vec((0usize..8, 0u64..24), 1..300),
    ) {
        let mut p = LruProfiler::new(tiny_geom(), 1);
        for &(set, n) in &trace {
            p.observe(addr(set, n));
        }
        let first = p.sdh().miss_curve();
        p.reset();
        for &(set, n) in &trace {
            p.observe(addr(set, n));
        }
        prop_assert_eq!(p.sdh().miss_curve(), first);
    }
}
