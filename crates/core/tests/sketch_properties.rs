//! Property-based error-bound suite for the autoscaling cuckoo filter
//! and the sketch-fidelity ATD built on it.
//!
//! The filter's contract has two halves, and the suite pins both:
//!
//! * **Hard guarantees** (must hold on every input): a resident key is
//!   never reported absent (no false negatives), deletes remove exactly
//!   one copy, growth is a pure function of the insert sequence, and a
//!   doubling rebuild preserves the full member multiset.
//! * **A quantified approximation**: lookups of *non*-members may
//!   collide with a resident fingerprint. For an `f`-bit fingerprint in
//!   4-slot buckets the classical analysis bounds the rate by
//!   `2 x 4 / 2^f` ([`analytic_fp_bound`]); the measured rate must stay
//!   within 2x of that bound at every supported width.

use plru_core::sketch::{analytic_fp_bound, CuckooFilter, SketchAtd, TagStore};
use proptest::prelude::*;

fn filter(fp_bits: u32) -> CuckooFilter {
    CuckooFilter::new(fp_bits, 0xD1CE_5EED).expect("supported width")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// No false negatives under arbitrary insert/delete interleavings:
    /// every key the multiset still holds is reported present, whatever
    /// order the operations arrived in and however often the filter
    /// rebuilt along the way.
    #[test]
    fn interleaved_inserts_and_deletes_never_lose_members(
        ops in proptest::collection::vec((any::<bool>(), 0u64..400), 1..600),
    ) {
        let mut f = filter(12);
        let mut live: Vec<u64> = Vec::new();
        for &(is_insert, key) in &ops {
            if is_insert {
                f.insert(key);
                live.push(key);
            } else if let Some(pos) = live.iter().position(|&k| k == key) {
                prop_assert!(f.delete(key), "resident key must delete");
                live.swap_remove(pos);
            } else {
                // Deleting a non-member may false-positive on a colliding
                // fingerprint; it must never corrupt the live members
                // (checked below), and on a true miss it returns false.
                let _ = f.delete(key);
            }
        }
        for &k in &live {
            prop_assert!(f.contains(k), "member {k} lost");
        }
    }

    /// Deterministic autoscaling: the capacity trajectory (capacity and
    /// rebuild count after every insert) is a pure function of the
    /// insert sequence — replaying the same keys gives the same
    /// trajectory, bit for bit.
    #[test]
    fn growth_trajectory_is_a_pure_function_of_the_inputs(
        keys in proptest::collection::vec(0u64..100_000, 1..500),
    ) {
        let mut a = filter(8);
        let mut b = filter(8);
        for &k in &keys {
            a.insert(k);
            b.insert(k);
            prop_assert_eq!(a.capacity(), b.capacity());
            prop_assert_eq!(a.rebuilds(), b.rebuilds());
            prop_assert_eq!(a.len(), b.len());
        }
    }

    /// Delete-then-lookup round trip: inserting twice and deleting once
    /// keeps the key present (multiset semantics); deleting the second
    /// copy of every key empties the filter.
    #[test]
    fn delete_round_trips(
        keys in proptest::collection::vec(0u64..10_000, 1..200),
    ) {
        let mut f = filter(16);
        let mut uniq = keys.clone();
        uniq.sort_unstable();
        uniq.dedup();
        for &k in &uniq {
            f.insert(k);
            f.insert(k);
        }
        for &k in &uniq {
            prop_assert!(f.delete(k));
            prop_assert!(f.contains(k), "second copy of {k} must survive");
        }
        for &k in &uniq {
            prop_assert!(f.delete(k));
        }
        prop_assert!(f.is_empty());
    }

    /// A doubling rebuild preserves the member set: push enough keys to
    /// force at least one autoscale past the deliberately tiny initial
    /// table, then verify every key.
    #[test]
    fn rebuild_preserves_the_member_set(
        base in 0u64..1_000_000,
        n in 100usize..400,
    ) {
        let mut f = filter(12);
        let before = f.capacity();
        for i in 0..n as u64 {
            f.insert(base + i * 7919);
        }
        prop_assert!(f.capacity() > before, "must have autoscaled");
        prop_assert!(f.rebuilds() >= 1);
        for i in 0..n as u64 {
            prop_assert!(f.contains(base + i * 7919));
        }
    }

    /// The sketch ATD inherits the no-false-negative guarantee: a filled
    /// (set, tag) is always found again until another fill displaces it.
    #[test]
    fn sketch_atd_finds_every_filled_line(
        tags in proptest::collection::vec(1u64..1_000_000, 1..64),
    ) {
        let geom = cachesim::CacheGeometry::new(4096, 8, 64).unwrap();
        let mut atd = SketchAtd::new(geom, 1, 16).unwrap();
        let mut uniq = tags.clone();
        uniq.sort_unstable();
        uniq.dedup();
        // Fill ways round-robin within one set, newest-first wins.
        let per_set = uniq.chunks(8).next().unwrap();
        for (w, &t) in per_set.iter().enumerate() {
            atd.fill(0, w, t);
        }
        for (w, &t) in per_set.iter().enumerate() {
            prop_assert_eq!(atd.lookup(0, t), Some(w));
        }
    }
}

/// Measured false-positive rate stays within 2x the analytic bound at
/// every supported fingerprint width. Deterministic (fixed key sets), so
/// it lives outside the proptest block.
#[test]
fn false_positive_rate_is_within_twice_the_analytic_bound() {
    for fp_bits in [8u32, 12, 16] {
        let mut f = filter(fp_bits);
        let members = 4096u64;
        for k in 0..members {
            f.insert(k);
        }
        let probes = 200_000u64;
        let mut false_hits = 0u64;
        for k in 0..probes {
            if f.contains(members + k) {
                false_hits += 1;
            }
        }
        let measured = false_hits as f64 / probes as f64;
        let bound = analytic_fp_bound(fp_bits);
        assert!(
            measured <= 2.0 * bound,
            "{fp_bits}-bit fingerprints: measured FP rate {measured:.6} \
             exceeds 2x analytic bound {bound:.6}"
        );
    }
}

/// The analytic bound itself halves with every extra fingerprint bit.
#[test]
fn analytic_bound_is_monotone_in_width() {
    assert!(analytic_fp_bound(8) > analytic_fp_bound(12));
    assert!(analytic_fp_bound(12) > analytic_fp_bound(16));
    assert!((analytic_fp_bound(8) - 8.0 / 256.0).abs() < 1e-12);
}
