//! Seeded-violation fixtures: for every rule family, one snippet that
//! must fire, one clean counterpart that must not, and a pragma'd
//! exception that must be suppressed. These are the proof that the CI
//! gate actually gates — if a rule regresses into silence, these fail.

use repolint::config::Config;
use repolint::findings::Report;
use repolint::workspace::{CrateInfo, SourceFile, Workspace};
use repolint::Options;

/// A minimal two-crate workspace the fixtures decorate.
fn base_ws() -> Workspace {
    Workspace {
        crates: vec![
            CrateInfo {
                name: "rootpkg".into(),
                dir: String::new(),
                deps: vec!["lowcrate".into()],
                dev_deps: vec![],
            },
            CrateInfo {
                name: "lowcrate".into(),
                dir: "crates/lowcrate".into(),
                deps: vec![],
                dev_deps: vec![],
            },
        ],
        ..Default::default()
    }
}

fn base_cfg() -> Config {
    Config::parse(
        r#"
[external]
crates = ["serde"]
forbidden = ["serde_derive"]
[layers]
rootpkg = ["lowcrate"]
lowcrate = []
[modules]
order = ["service", "engine"]
[hardened]
files = ["crates/lowcrate/src/decode.rs"]
[error-contract]
files = ["src/**"]
[drift]
bench-baselines = "BENCH_"
bench-sources = "benches"
scenarios-doc = "docs/SCENARIOS.md"
spec-source = "src/engine/spec.rs"
cap-source = "crates/lowcrate/src/decode.rs:MAX_IN"
cap-mirror = "src/service/wire.rs:MAX_WIRE"
"#,
    )
    .unwrap()
}

fn add(ws: &mut Workspace, path: &str, krate: &str, src: &str) {
    ws.files.push(SourceFile::from_source(path, krate, src));
}

/// Run and return (findings, report) with the standard fixture config.
fn run(ws: &Workspace) -> Report {
    repolint::run(ws, &base_cfg(), Options::default())
}

/// Baseline files every fixture needs so config validation stays quiet.
fn scaffold(ws: &mut Workspace) {
    add(
        ws,
        "crates/lowcrate/src/decode.rs",
        "lowcrate",
        "pub const MAX_IN: u32 = 64;\npub fn ok() {}\n",
    );
    add(
        ws,
        "src/service/wire.rs",
        "rootpkg",
        "pub const MAX_WIRE: u32 = lowcrate::decode::MAX_IN;\n",
    );
    add(
        ws,
        "src/engine/spec.rs",
        "rootpkg",
        "pub struct Spec { pub widgets: u32 }\n",
    );
    add(
        ws,
        "benches/speed.rs",
        "rootpkg",
        "fn main() { c.bench(\"grp\", format!(\"leaf-{n}\")); }\n",
    );
    ws.texts
        .push(("docs/SCENARIOS.md".into(), "- **`widgets`** axis\n".into()));
    ws.texts.push((
        "BENCH_0.json".into(),
        r#"{"results":[{"id":"grp/leaf"}]}"#.into(),
    ));
}

fn rules_fired(report: &Report, rule: &str) -> Vec<(String, u32)> {
    report
        .findings
        .iter()
        .filter(|f| f.rule == rule)
        .map(|f| (f.file.clone(), f.line))
        .collect()
}

#[test]
fn clean_scaffold_is_clean() {
    let mut ws = base_ws();
    scaffold(&mut ws);
    let report = run(&ws);
    assert!(
        report.findings.is_empty(),
        "scaffold should be clean, got: {:?}",
        report.findings
    );
}

#[test]
fn layering_fires_on_upward_and_forbidden_imports() {
    let mut ws = base_ws();
    scaffold(&mut ws);
    // Violation: the low crate reaching up into the root package, plus a
    // forbidden stub-internal path.
    add(
        &mut ws,
        "crates/lowcrate/src/bad.rs",
        "lowcrate",
        "use rootpkg::thing;\nuse serde_derive::Serialize;\n",
    );
    // Violation: a root module reaching up the module order.
    add(
        &mut ws,
        "src/engine/up.rs",
        "rootpkg",
        "use crate::service::wire;\n",
    );
    // Clean: root reaching down into the low crate and into serde.
    add(
        &mut ws,
        "src/service/fine.rs",
        "rootpkg",
        "use lowcrate::decode;\nuse serde::Serialize;\nuse crate::engine;\n",
    );
    let report = run(&ws);
    let hits = rules_fired(&report, "layering");
    assert!(
        hits.contains(&("crates/lowcrate/src/bad.rs".into(), 1)),
        "{hits:?}"
    );
    assert!(
        hits.contains(&("crates/lowcrate/src/bad.rs".into(), 2)),
        "{hits:?}"
    );
    assert!(hits.contains(&("src/engine/up.rs".into(), 1)), "{hits:?}");
    assert!(
        !hits.iter().any(|(f, _)| f == "src/service/fine.rs"),
        "{hits:?}"
    );
}

#[test]
fn layering_fires_on_manifest_edges() {
    let mut ws = base_ws();
    scaffold(&mut ws);
    ws.crates[1].deps.push("rootpkg".into()); // low crate depending on root
    let report = run(&ws);
    let hits = rules_fired(&report, "layering");
    assert!(
        hits.contains(&("crates/lowcrate/Cargo.toml".into(), 0)),
        "{hits:?}"
    );
}

#[test]
fn panic_rule_fires_in_hardened_files_only() {
    let mut ws = base_ws();
    scaffold(&mut ws);
    // The hardened file gains violations: unwrap, panic!, computed index.
    let hardened = ws
        .files
        .iter_mut()
        .find(|f| f.path == "crates/lowcrate/src/decode.rs")
        .unwrap();
    *hardened = SourceFile::from_source(
        "crates/lowcrate/src/decode.rs",
        "lowcrate",
        concat!(
            "pub const MAX_IN: u32 = 64;\n",
            "pub fn bad(v: &[u8], i: usize) -> u8 {\n",
            "    let x = v.first().unwrap();\n",
            "    if *x > 9 { panic!(\"boom\") }\n",
            "    v[i]\n",
            "}\n",
            "pub fn fine(v: &[u8], i: usize) -> Option<u8> {\n",
            "    v.get(i).copied()\n",
            "}\n",
            "pub fn excused(v: &[u8], i: usize) -> u8 {\n",
            "    // repolint: allow(panic) — fixture: caller bounds i\n",
            "    v[i]\n",
            "}\n",
            "#[cfg(test)]\n",
            "mod tests {\n",
            "    #[test]\n",
            "    fn t() { assert!(super::fine(&[1], 0).unwrap() == 1); }\n",
            "}\n",
        ),
    );
    // Same code outside the hardened list: must not fire.
    add(
        &mut ws,
        "crates/lowcrate/src/other.rs",
        "lowcrate",
        "pub fn f(v: &[u8], i: usize) -> u8 { v[i] }\n",
    );
    let report = run(&ws);
    let hits = rules_fired(&report, "panic");
    assert_eq!(
        hits,
        vec![
            ("crates/lowcrate/src/decode.rs".into(), 3),
            ("crates/lowcrate/src/decode.rs".into(), 4),
            ("crates/lowcrate/src/decode.rs".into(), 5),
        ],
        "unwrap, panic! and v[i] should fire; test mod, .get and pragma'd site should not"
    );
    assert_eq!(report.suppressed.len(), 1);
    assert_eq!(report.suppressed[0].1, "fixture: caller bounds i");
}

#[test]
fn cap_alloc_fires_without_a_dominating_cap() {
    let mut ws = base_ws();
    scaffold(&mut ws);
    let hardened = ws
        .files
        .iter_mut()
        .find(|f| f.path == "crates/lowcrate/src/decode.rs")
        .unwrap();
    *hardened = SourceFile::from_source(
        "crates/lowcrate/src/decode.rs",
        "lowcrate",
        concat!(
            "pub const MAX_IN: u32 = 64;\n",
            "pub fn bad(n: usize) -> Vec<u8> {\n",
            "    Vec::with_capacity(n)\n",
            "}\n",
            "pub fn capped_inline(n: usize) -> Vec<u8> {\n",
            "    Vec::with_capacity(n.min(MAX_IN as usize))\n",
            "}\n",
            "pub fn guarded(n: u32) -> Option<Vec<u8>> {\n",
            "    if n > MAX_IN { return None; }\n",
            "    Some(vec![0u8; n as usize])\n",
            "}\n",
        ),
    );
    let report = run(&ws);
    let hits = rules_fired(&report, "cap-alloc");
    assert_eq!(
        hits,
        vec![("crates/lowcrate/src/decode.rs".into(), 3)],
        "only the uncapped with_capacity should fire"
    );
}

#[test]
fn error_style_fires_on_uppercase_and_multiline() {
    let mut ws = base_ws();
    scaffold(&mut ws);
    add(
        &mut ws,
        "src/service/errs.rs",
        "rootpkg",
        concat!(
            "pub fn bad() -> Result<(), String> {\n",
            "    Err(\"Bad things happened\".to_string())\n",
            "}\n",
            "pub fn worse() -> Result<(), String> {\n",
            "    Err(\"line one\\nline two\".to_string())\n",
            "}\n",
            "pub fn fine() -> Result<(), String> {\n",
            "    Err(\"bad things happened\".to_string())\n",
            "}\n",
            "pub fn acronym() -> Result<(), String> {\n",
            "    Err(\"NRU scale out of range\".to_string())\n",
            "}\n",
            "pub fn wrapped() -> Result<(), String> {\n",
            "    Err(\"one logical line \\\n",
            "         continued in source\".to_string())\n",
            "}\n",
        ),
    );
    let report = run(&ws);
    let hits = rules_fired(&report, "error-style");
    assert_eq!(
        hits,
        vec![
            ("src/service/errs.rs".into(), 2),
            ("src/service/errs.rs".into(), 5),
        ],
        "uppercase and real-\\n fire; lowercase, acronym and continuation do not"
    );
}

#[test]
fn drift_fires_on_stale_bench_id_axis_and_cap_fork() {
    let mut ws = base_ws();
    scaffold(&mut ws);
    // Stale bench id, unknown doc axis, and a cap mirror that forked.
    ws.texts
        .retain(|(p, _)| p != "BENCH_0.json" && p != "docs/SCENARIOS.md");
    ws.texts.push((
        "BENCH_0.json".into(),
        r#"{"results":[{"id":"grp/leaf"},{"id":"gone/one"}]}"#.into(),
    ));
    ws.texts.push((
        "docs/SCENARIOS.md".into(),
        "- **`widgets`** axis\n- **`gadgets`** axis\n".into(),
    ));
    let wire = ws
        .files
        .iter_mut()
        .find(|f| f.path == "src/service/wire.rs")
        .unwrap();
    *wire = SourceFile::from_source(
        "src/service/wire.rs",
        "rootpkg",
        "pub const MAX_WIRE: u32 = 128;\n",
    );
    let report = run(&ws);
    let hits = rules_fired(&report, "drift");
    assert!(hits.contains(&("BENCH_0.json".into(), 0)), "{hits:?}");
    assert!(hits.contains(&("docs/SCENARIOS.md".into(), 2)), "{hits:?}");
    assert!(
        hits.contains(&("src/service/wire.rs".into(), 1)),
        "{hits:?}"
    );
    assert_eq!(hits.len(), 3, "{hits:?}");
}

#[test]
fn config_rule_fires_on_nonexistent_targets() {
    let mut ws = base_ws();
    scaffold(&mut ws);
    let mut cfg = base_cfg();
    cfg.layers.insert("ghostcrate".into(), vec![]);
    cfg.hardened.push("src/ghost.rs".into());
    let report = repolint::run(&ws, &cfg, Options::default());
    let hits = rules_fired(&report, "config");
    assert_eq!(hits.len(), 2, "{:?}", report.findings);
    assert!(hits.iter().all(|(f, _)| f == "repolint.toml"));
}

#[test]
fn pragma_rule_fires_on_typos_and_deny_promotes_unused() {
    let mut ws = base_ws();
    scaffold(&mut ws);
    add(
        &mut ws,
        "src/service/pragmas.rs",
        "rootpkg",
        concat!(
            "// repolint: alow(panic) — typo in the verb\n",
            "pub fn a() {}\n",
            "// repolint: allow(panic)\n",
            "pub fn b() {}\n",
            "// repolint: allow(panic) — suppresses nothing here\n",
            "pub fn c() {}\n",
        ),
    );
    let lax = run(&ws);
    let hits = rules_fired(&lax, "pragma");
    // The typo and the missing reason are findings; the unused-but-valid
    // pragma is a warning until --deny.
    assert_eq!(hits.len(), 2, "{:?}", lax.findings);
    assert_eq!(lax.warnings.len(), 1, "{:?}", lax.warnings);

    let deny = repolint::run(&ws, &base_cfg(), Options { deny: true });
    assert_eq!(rules_fired(&deny, "pragma").len(), 3, "{:?}", deny.findings);
    assert!(deny.warnings.is_empty());
}
