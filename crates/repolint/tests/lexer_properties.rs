//! Property tests for the lexer and the pragma grammar — the two pieces
//! of repolint that consume arbitrary text and must never panic or
//! mis-track state.
//!
//! The vendored proptest stub has no regex-string strategies, so inputs
//! are built from alphabets (`select` over chars) and fragment pools
//! (`select` over lexer-state-changing snippets) via `prop_map`.

use proptest::prelude::*;
use repolint::lexer::{self, Kind};
use repolint::pragma::{self, Pragma};

/// Strings over a fixed alphabet, length in `size`.
fn string_of(alphabet: &str, size: std::ops::Range<usize>) -> impl Strategy<Value = String> {
    prop::collection::vec(
        prop::sample::select(alphabet.chars().collect::<Vec<char>>()),
        size,
    )
    .prop_map(|cs| cs.into_iter().collect())
}

/// Adversarial source text: fragments chosen to open, close and nest
/// every lexer state (strings, raw strings, chars, both comment forms).
fn source_text() -> impl Strategy<Value = String> {
    let fragments: Vec<&'static str> = vec![
        "\"", "r#\"", "\"#", "r\"", "/*", "*/", "//", "///", "'", "b'", "\\", "\\\"", "\n", "\r\n",
        " ", "ident", "unwrap", "0x1f", "1_000", "'a'", "'static", "#", "!", "[", "]", "(", ")",
        "{", "}", ";", "—", "é", "r###\"", "\"###",
    ];
    prop::collection::vec(prop::sample::select(fragments), 0..24).prop_map(|fs| fs.concat())
}

proptest! {
    /// Totality: any input lexes without panicking, and every token's
    /// text actually occurs in the input (the lexer never invents or
    /// reorders bytes).
    #[test]
    fn lex_is_total_and_faithful(src in source_text()) {
        let toks = lexer::lex(&src);
        for t in &toks {
            prop_assert!(src.contains(&t.text), "token {:?} not found in input", t.text);
            prop_assert!(t.line >= 1);
        }
        // Lines are nondecreasing in stream order.
        for w in toks.windows(2) {
            prop_assert!(w[0].line <= w[1].line);
        }
    }

    /// String-state round-trip: a cooked string literal containing any
    /// newline-free, quote-free, escape-free payload comes back as one
    /// Str token with that payload, and nothing inside it leaks out as
    /// code tokens.
    #[test]
    fn string_contents_never_leak(
        payload in string_of("abc XYZ09;:,.(){}#'*/-—!", 0..40),
    ) {
        let src = format!("let s = \"{payload}\"; x.unwrap()");
        let toks = lexer::lex(&src);
        let strs: Vec<_> = toks.iter().filter(|t| t.kind == Kind::Str).collect();
        prop_assert_eq!(strs.len(), 1);
        prop_assert_eq!(strs[0].str_content().unwrap(), payload.as_str());
        // The unwrap after the literal is still visible as code.
        prop_assert!(toks.iter().any(|t| t.kind == Kind::Ident && t.text == "unwrap"));
    }

    /// Comment-state round-trip: a `//` comment swallows the rest of the
    /// line — code spelled inside it never tokenizes as idents.
    #[test]
    fn line_comments_swallow_their_line(
        payload in string_of("abc XYZ09\"\\'{}()*/;—", 0..40),
    ) {
        let src = format!("//x {payload}\nnext_line");
        let toks = lexer::lex(&src);
        prop_assert_eq!(toks.iter().filter(|t| t.kind == Kind::Comment).count(), 1);
        let idents: Vec<_> = toks.iter().filter(|t| t.kind == Kind::Ident).collect();
        prop_assert_eq!(idents.len(), 1);
        prop_assert_eq!(idents[0].text.as_str(), "next_line");
        prop_assert_eq!(idents[0].line, 2);
    }

    /// Raw strings swallow quotes: `r#"…"#` with embedded `"` stays one
    /// token and terminates exactly at the matching `"#`.
    #[test]
    fn raw_strings_contain_quotes(
        payload in string_of("abc \"XYZ09'{}()*/\\;", 0..40),
    ) {
        let src = format!("let s = r#\"{payload}\"#; tail");
        let toks = lexer::lex(&src);
        prop_assert_eq!(toks.iter().filter(|t| t.kind == Kind::Str).count(), 1);
        prop_assert!(toks.iter().any(|t| t.kind == Kind::Ident && t.text == "tail"));
    }

    /// The pragma parser is total on arbitrary comment bodies.
    #[test]
    fn pragma_parse_never_panics(body in source_text()) {
        let _ = pragma::parse_comment(&format!("// {body}"), 1);
    }

    /// Display → parse round-trips for every well-formed pragma.
    #[test]
    fn pragma_display_parse_round_trip(
        heads in prop::collection::vec(string_of("abcdehlmnop", 1..2), 1..4),
        tails in prop::collection::vec(string_of("abclmn09-", 0..12), 4..5),
        reason in string_of("abc XYZ09,.;<>=", 1..60),
    ) {
        prop_assume!(!reason.trim().is_empty());
        let rules: Vec<String> = heads
            .iter()
            .enumerate()
            .map(|(i, h)| format!("{h}{}", tails[i % tails.len()]))
            .collect();
        let p = Pragma { rules, reason: reason.trim().to_string(), line: 5 };
        let back = pragma::parse_comment(&p.to_string(), 5).unwrap();
        prop_assert_eq!(back, p);
    }
}

/// Unterminated constructs must still consume all input (no infinite
/// loop, no panic) — a separate deterministic check for the nasty ones.
#[test]
fn unterminated_constructs_are_total() {
    for src in [
        "\"never closed",
        "r#\"never closed",
        "/* never closed",
        "/* nested /* comment",
        "'",
        "b'",
        "r###",
    ] {
        let toks = lexer::lex(src);
        assert!(!toks.is_empty(), "{src:?} produced no tokens");
    }
}
