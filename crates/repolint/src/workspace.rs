//! The in-memory view of the workspace the rules run against: every
//! crate's manifest dependencies plus every lexed source file.
//!
//! Rules never touch the filesystem — they read this model — so the
//! fixture tests can assemble synthetic workspaces entirely in memory.

use crate::lexer::{self, Tok};
use crate::pragma::{self, Pragma, PragmaError};
use std::fs;
use std::path::{Path, PathBuf};

/// One workspace member's manifest facts.
#[derive(Debug, Clone, Default)]
pub struct CrateInfo {
    /// Package name (`plru-core`, not the `plru_core` lib ident).
    pub name: String,
    /// Repo-relative directory (`""` for the root package).
    pub dir: String,
    /// `[dependencies]` names.
    pub deps: Vec<String>,
    /// `[dev-dependencies]` names.
    pub dev_deps: Vec<String>,
}

/// One lexed source file.
#[derive(Debug)]
pub struct SourceFile {
    /// Repo-relative path, `/`-separated.
    pub path: String,
    /// Owning package name.
    pub krate: String,
    /// Full token stream (comments included).
    pub toks: Vec<Tok>,
    /// `#[cfg(test)]` line ranges.
    pub test_regions: Vec<(u32, u32)>,
    /// Parsed pragmas.
    pub pragmas: Vec<Pragma>,
    /// Malformed `repolint:` comments.
    pub pragma_errors: Vec<PragmaError>,
}

impl SourceFile {
    /// Build from source text (the only constructor — walkers and
    /// fixtures both go through it).
    pub fn from_source(path: &str, krate: &str, src: &str) -> SourceFile {
        let toks = lexer::lex(src);
        let test_regions = lexer::test_regions(&toks);
        let (pragmas, pragma_errors) = pragma::scan(&toks);
        SourceFile {
            path: path.to_string(),
            krate: krate.to_string(),
            toks,
            test_regions,
            pragmas,
            pragma_errors,
        }
    }

    /// Is `line` inside a `#[cfg(test)]` region?
    pub fn in_test(&self, line: u32) -> bool {
        lexer::in_regions(&self.test_regions, line)
    }

    /// Is this file itself test or bench code (integration tests,
    /// benches, examples), as opposed to shipped library/binary source?
    pub fn is_test_code(&self) -> bool {
        let p = &self.path;
        p.contains("/tests/") || p.starts_with("tests/") || p.contains("/benches/")
    }
}

/// The whole repo as the rules see it.
#[derive(Debug, Default)]
pub struct Workspace {
    /// Absolute root (unused by rules; kept for diagnostics).
    pub root: PathBuf,
    /// All workspace members (vendor stubs excluded).
    pub crates: Vec<CrateInfo>,
    /// All lexed `.rs` files (vendor and target excluded).
    pub files: Vec<SourceFile>,
    /// Non-Rust artifacts the drift rules read: repo-relative path →
    /// contents. Populated for `BENCH_*`, docs and manifests.
    pub texts: Vec<(String, String)>,
}

impl Workspace {
    /// Load the real tree under `root`.
    pub fn load(root: &Path) -> Result<Workspace, String> {
        let mut ws = Workspace {
            root: root.to_path_buf(),
            ..Default::default()
        };

        // Root package + members under crates/.
        ws.crates.push(parse_manifest(root, "", "Cargo.toml")?);
        let crates_dir = root.join("crates");
        for entry in read_dir_sorted(&crates_dir)? {
            let dir = format!("crates/{entry}");
            if root.join(&dir).join("Cargo.toml").is_file() {
                ws.crates
                    .push(parse_manifest(root, &dir, &format!("{dir}/Cargo.toml"))?);
            }
        }

        // Rust sources: root src/tests/examples + each member crate.
        let mut rs_roots = vec![
            "src".to_string(),
            "tests".to_string(),
            "examples".to_string(),
        ];
        rs_roots.extend(
            ws.crates
                .iter()
                .filter(|c| !c.dir.is_empty())
                .map(|c| c.dir.clone()),
        );
        for top in rs_roots {
            collect_rs(root, Path::new(&top), &mut ws)?;
        }

        // Drift inputs: bench baselines, docs, manifests.
        for entry in read_dir_sorted(root)? {
            if entry.ends_with(".json") || entry.ends_with(".toml") {
                ws.push_text(root, &entry)?;
            }
        }
        for entry in read_dir_sorted(&root.join("docs")).unwrap_or_default() {
            if entry.ends_with(".md") {
                ws.push_text(root, &format!("docs/{entry}"))?;
            }
        }
        for krate in ws.crates.clone() {
            if !krate.dir.is_empty() {
                ws.push_text(root, &format!("{}/Cargo.toml", krate.dir))?;
            }
        }
        Ok(ws)
    }

    fn push_text(&mut self, root: &Path, rel: &str) -> Result<(), String> {
        let text = fs::read_to_string(root.join(rel)).map_err(|e| format!("{rel}: {e}"))?;
        self.texts.push((rel.to_string(), text));
        Ok(())
    }

    /// The package owning a repo-relative path.
    pub fn crate_of(&self, path: &str) -> &str {
        self.crates
            .iter()
            .filter(|c| !c.dir.is_empty() && path.starts_with(&format!("{}/", c.dir)))
            .map(|c| c.name.as_str())
            .next()
            .unwrap_or_else(|| self.crates.first().map(|c| c.name.as_str()).unwrap_or(""))
    }

    /// Text artifact lookup.
    pub fn text(&self, path: &str) -> Option<&str> {
        self.texts
            .iter()
            .find(|(p, _)| p == path)
            .map(|(_, t)| t.as_str())
    }

    /// Source-file lookup.
    pub fn file(&self, path: &str) -> Option<&SourceFile> {
        self.files.iter().find(|f| f.path == path)
    }
}

fn read_dir_sorted(dir: &Path) -> Result<Vec<String>, String> {
    let mut names = Vec::new();
    let entries = fs::read_dir(dir).map_err(|e| format!("{}: {e}", dir.display()))?;
    for entry in entries {
        let entry = entry.map_err(|e| format!("{}: {e}", dir.display()))?;
        if let Some(name) = entry.file_name().to_str() {
            names.push(name.to_string());
        }
    }
    names.sort();
    Ok(names)
}

fn collect_rs(root: &Path, rel: &Path, ws: &mut Workspace) -> Result<(), String> {
    let abs = root.join(rel);
    if !abs.is_dir() {
        return Ok(());
    }
    for name in read_dir_sorted(&abs)? {
        if name == "target" || name == "vendor" || name.starts_with('.') {
            continue;
        }
        let sub = rel.join(&name);
        let abs_sub = root.join(&sub);
        if abs_sub.is_dir() {
            collect_rs(root, &sub, ws)?;
        } else if name.ends_with(".rs") {
            let path = sub.to_string_lossy().replace('\\', "/");
            let src = fs::read_to_string(&abs_sub).map_err(|e| format!("{path}: {e}"))?;
            let krate = ws.crate_of(&path).to_string();
            ws.files.push(SourceFile::from_source(&path, &krate, &src));
        }
    }
    Ok(())
}

/// Extract package name + dependency names from a manifest. Handles the
/// workspace idioms used here: `name.workspace = true`, inline tables,
/// and plain `name = "version"`.
fn parse_manifest(root: &Path, dir: &str, rel: &str) -> Result<CrateInfo, String> {
    let text = fs::read_to_string(root.join(rel)).map_err(|e| format!("{rel}: {e}"))?;
    Ok(parse_manifest_text(dir, &text))
}

/// The text-level half of manifest parsing (fixture-testable).
pub fn parse_manifest_text(dir: &str, text: &str) -> CrateInfo {
    let mut info = CrateInfo {
        dir: dir.to_string(),
        ..Default::default()
    };
    let mut section = String::new();
    for raw in text.lines() {
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        if line.starts_with('[') {
            section = line.trim_matches(['[', ']']).to_string();
            continue;
        }
        let Some(eq) = line.find('=') else { continue };
        let key = line[..eq].trim();
        // `serde.workspace = true` → dep name `serde`.
        let name = key.split('.').next().unwrap_or(key).trim_matches('"');
        match section.as_str() {
            "package" if key == "name" => {
                info.name = line[eq + 1..].trim().trim_matches('"').to_string();
            }
            "dependencies" => info.deps.push(name.to_string()),
            "dev-dependencies" => info.dev_deps.push(name.to_string()),
            _ => {}
        }
    }
    info
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn manifest_dep_names_cover_workspace_and_inline_forms() {
        let info = parse_manifest_text(
            "crates/x",
            r#"
[package]
name = "x-ray"
[dependencies]
serde.workspace = true
plru-repro = { path = "../.." }
rand = "0.8"
[dev-dependencies]
proptest.workspace = true
[[bench]]
name = "b"
"#,
        );
        assert_eq!(info.name, "x-ray");
        assert_eq!(info.deps, vec!["serde", "plru-repro", "rand"]);
        assert_eq!(info.dev_deps, vec!["proptest"]);
    }

    #[test]
    fn crate_of_prefers_member_dirs_over_root() {
        let ws = Workspace {
            crates: vec![
                CrateInfo {
                    name: "root-pkg".into(),
                    ..Default::default()
                },
                CrateInfo {
                    name: "member".into(),
                    dir: "crates/member".into(),
                    ..Default::default()
                },
            ],
            ..Default::default()
        };
        assert_eq!(ws.crate_of("crates/member/src/lib.rs"), "member");
        assert_eq!(ws.crate_of("src/lib.rs"), "root-pkg");
    }
}
