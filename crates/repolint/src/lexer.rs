//! A small Rust lexer — just enough fidelity for line/token lint rules.
//!
//! The only hard requirement is *state correctness*: a `//` inside a
//! string is not a comment, an `unwrap()` inside a doc comment is not a
//! call, a `"` inside `r#"…"#` does not close anything, and `'a` (the
//! lifetime) is not the start of a char literal. Everything else —
//! numeric suffix grammar, multi-byte operator max-munch beyond the
//! handful the rules read — is deliberately loose.
//!
//! The lexer never fails: any input string produces a token stream
//! (unknown bytes come out as one-character [`Kind::Punct`] tokens), and
//! an unterminated string/comment simply extends to end of input. This
//! totality is property-tested in `tests/lexer_properties.rs`.

/// Token class. Comments are real tokens here (the pragma parser reads
/// them); rules that only care about code skip them.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Kind {
    /// Identifier or keyword (`fn`, `unwrap`, `MAX_FRAME_BYTES`, ...).
    Ident,
    /// Lifetime (`'a`, `'static`) — distinguished from char literals.
    Lifetime,
    /// Numeric literal (integer or float, any base, with suffix).
    Num,
    /// Any string-ish literal: `"…"`, `r#"…"#`, `b"…"`, `br"…"`, `c"…"`.
    /// `text` keeps the delimiters.
    Str,
    /// Char or byte-char literal: `'x'`, `b'\n'`.
    Char,
    /// Punctuation; multi-character for the operators the rules read
    /// (`::`, `..`, `..=`, `->`, `=>`, `==`, `!=`, `<=`, `>=`, `<<`,
    /// `>>`, `&&`, `||`), one character otherwise.
    Punct,
    /// Line or block comment, delimiters included. Doc comments too.
    Comment,
}

/// One token with its 1-based source line (the line it *starts* on).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Tok {
    pub kind: Kind,
    pub text: String,
    pub line: u32,
}

impl Tok {
    /// For a [`Kind::Str`] token: the content between the delimiters
    /// (escape sequences left as written). `None` for other kinds.
    pub fn str_content(&self) -> Option<&str> {
        if self.kind != Kind::Str {
            return None;
        }
        let t = self.text.as_str();
        // Strip the optional prefix (b, r, br, c, cr), then the hashes
        // and quotes. Unterminated literals keep whatever is there.
        let body = t.trim_start_matches(['b', 'r', 'c']);
        let hashes = body.len() - body.trim_start_matches('#').len();
        let body = &body[hashes..];
        let body = body.strip_prefix('"').unwrap_or(body);
        let body = body
            .strip_suffix(&format!("\"{}", "#".repeat(hashes)))
            .unwrap_or_else(|| body.strip_suffix('"').unwrap_or(body));
        Some(body)
    }

    /// True for comment tokens that open a doc comment (`///`, `//!`,
    /// `/**`, `/*!`).
    pub fn is_doc_comment(&self) -> bool {
        self.kind == Kind::Comment
            && (self.text.starts_with("///")
                || self.text.starts_with("//!")
                || self.text.starts_with("/**")
                || self.text.starts_with("/*!"))
    }
}

/// Lex `src` completely. Total: never panics, consumes every byte.
pub fn lex(src: &str) -> Vec<Tok> {
    Lexer {
        src,
        bytes: src.as_bytes(),
        pos: 0,
        line: 1,
        out: Vec::new(),
    }
    .run()
}

/// The significant (non-comment) tokens of `toks`.
pub fn code(toks: &[Tok]) -> impl Iterator<Item = &Tok> {
    toks.iter().filter(|t| t.kind != Kind::Comment)
}

struct Lexer<'a> {
    src: &'a str,
    bytes: &'a [u8],
    pos: usize,
    line: u32,
    out: Vec<Tok>,
}

impl<'a> Lexer<'a> {
    fn run(mut self) -> Vec<Tok> {
        while self.pos < self.bytes.len() {
            let start = self.pos;
            let line = self.line;
            let b = self.bytes[self.pos];
            match b {
                b' ' | b'\t' | b'\r' => self.pos += 1,
                b'\n' => {
                    self.pos += 1;
                    self.line += 1;
                }
                b'/' if self.peek(1) == Some(b'/') => self.line_comment(start, line),
                b'/' if self.peek(1) == Some(b'*') => self.block_comment(start, line),
                b'"' => self.string(start, line),
                b'\'' => self.char_or_lifetime(start, line),
                b'r' | b'b' | b'c' if self.literal_prefix() => {
                    // b"...", r"...", r#"..."#, br#"..."#, c"..." etc.
                    self.prefixed_literal(start, line);
                }
                _ if b.is_ascii_digit() => self.number(start, line),
                _ if b == b'_' || b.is_ascii_alphabetic() || b >= 0x80 => self.ident(start, line),
                _ => self.punct(start, line),
            }
        }
        self.out
    }

    fn peek(&self, ahead: usize) -> Option<u8> {
        self.bytes.get(self.pos + ahead).copied()
    }

    fn push(&mut self, kind: Kind, start: usize, line: u32) {
        self.out.push(Tok {
            kind,
            text: self.src[start..self.pos].to_string(),
            line,
        });
    }

    fn bump_line_counter(&mut self, from: usize) {
        self.line += self.bytes[from..self.pos]
            .iter()
            .filter(|&&c| c == b'\n')
            .count() as u32;
    }

    fn line_comment(&mut self, start: usize, line: u32) {
        while self.pos < self.bytes.len() && self.bytes[self.pos] != b'\n' {
            self.pos += 1;
        }
        self.push(Kind::Comment, start, line);
    }

    fn block_comment(&mut self, start: usize, line: u32) {
        self.pos += 2;
        let mut depth = 1usize;
        while self.pos < self.bytes.len() && depth > 0 {
            if self.bytes[self.pos] == b'/' && self.peek(1) == Some(b'*') {
                depth += 1;
                self.pos += 2;
            } else if self.bytes[self.pos] == b'*' && self.peek(1) == Some(b'/') {
                depth -= 1;
                self.pos += 2;
            } else {
                self.pos += 1;
            }
        }
        self.bump_line_counter(start);
        self.push(Kind::Comment, start, line);
    }

    /// Cooked string body starting at the opening `"` at `self.pos`.
    fn string(&mut self, start: usize, line: u32) {
        self.pos += 1; // opening quote
        while self.pos < self.bytes.len() {
            match self.bytes[self.pos] {
                b'\\' => self.pos = (self.pos + 2).min(self.bytes.len()),
                b'"' => {
                    self.pos += 1;
                    break;
                }
                _ => self.pos += 1,
            }
        }
        self.bump_line_counter(start);
        self.push(Kind::Str, start, line);
    }

    /// Is the `r`/`b`/`c` at `self.pos` the prefix of a literal (rather
    /// than the first letter of an identifier like `raw` or `build`)?
    fn literal_prefix(&self) -> bool {
        let mut i = self.pos;
        // Up to two prefix letters (br, cr); both orders tolerated.
        for _ in 0..2 {
            match self.bytes.get(i) {
                Some(b'r') | Some(b'b') | Some(b'c') => i += 1,
                _ => break,
            }
        }
        loop {
            match self.bytes.get(i) {
                Some(b'#') => i += 1, // raw-string hashes
                Some(b'"') => return true,
                Some(b'\'') => {
                    // b'x' — byte char. Only a 1-letter prefix does this.
                    return i == self.pos + 1 && self.bytes.get(self.pos) == Some(&b'b');
                }
                _ => return false,
            }
        }
    }

    fn prefixed_literal(&mut self, start: usize, line: u32) {
        let mut raw = false;
        while let Some(b'r' | b'b' | b'c') = self.bytes.get(self.pos) {
            raw |= self.bytes[self.pos] == b'r';
            self.pos += 1;
        }
        if self.bytes.get(self.pos) == Some(&b'\'') {
            // b'…' byte char: same body rules as a cooked char literal.
            self.char_body();
            self.bump_line_counter(start);
            self.push(Kind::Char, start, line);
            return;
        }
        let mut hashes = 0usize;
        while self.bytes.get(self.pos) == Some(&b'#') {
            hashes += 1;
            self.pos += 1;
        }
        if self.bytes.get(self.pos) != Some(&b'"') {
            // `r#foo` raw identifier (or stray hashes): re-lex as ident.
            self.pos = start;
            self.raw_ident(start, line);
            return;
        }
        if raw {
            self.pos += 1; // opening quote
            let closer: Vec<u8> = std::iter::once(b'"').chain(vec![b'#'; hashes]).collect();
            while self.pos < self.bytes.len() {
                if self.bytes[self.pos..].starts_with(&closer) {
                    self.pos += closer.len();
                    break;
                }
                self.pos += 1;
            }
            self.bump_line_counter(start);
            self.push(Kind::Str, start, line);
        } else {
            self.string(start, line); // b"…" / c"…": cooked body
        }
    }

    fn raw_ident(&mut self, start: usize, line: u32) {
        // `r#ident` — consume prefix + ident chars.
        self.pos += 2;
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|&c| c == b'_' || c.is_ascii_alphanumeric() || c >= 0x80)
        {
            self.pos += 1;
        }
        self.push(Kind::Ident, start, line);
    }

    /// `'` at `self.pos`: char literal or lifetime?
    fn char_or_lifetime(&mut self, start: usize, line: u32) {
        // Lifetime: `'` + ident-start, NOT followed by a closing `'`.
        // Char: everything else (`'a'`, `'\n'`, `'\u{1F600}'`, `'''`…).
        let next = self.peek(1);
        let is_ident_start =
            next.is_some_and(|c| c == b'_' || c.is_ascii_alphabetic() || c >= 0x80);
        if is_ident_start {
            // Scan the would-be lifetime name; a trailing `'` makes it a
            // char literal after all.
            let mut i = self.pos + 1;
            while self
                .bytes
                .get(i)
                .is_some_and(|&c| c == b'_' || c.is_ascii_alphanumeric() || c >= 0x80)
            {
                i += 1;
            }
            if self.bytes.get(i) != Some(&b'\'') {
                self.pos = i;
                self.push(Kind::Lifetime, start, line);
                return;
            }
        }
        self.char_body();
        self.bump_line_counter(start);
        self.push(Kind::Char, start, line);
    }

    /// Consume a char/byte-char literal starting at the `'` at `self.pos`.
    fn char_body(&mut self) {
        self.pos += 1; // opening quote
        match self.bytes.get(self.pos) {
            Some(b'\\') => {
                self.pos += 2; // the escape head, e.g. `\n`, `\u`, `\'`
                if self.bytes.get(self.pos - 1) == Some(&b'u') {
                    // `\u{…}`: consume through the closing brace.
                    while self
                        .bytes
                        .get(self.pos)
                        .is_some_and(|&c| c != b'}' && c != b'\n')
                    {
                        self.pos += 1;
                    }
                    self.pos = (self.pos + 1).min(self.bytes.len());
                }
            }
            Some(_) => {
                // One char (possibly multi-byte UTF-8).
                self.pos += 1;
                while self
                    .bytes
                    .get(self.pos)
                    .is_some_and(|&c| c >= 0x80 && c & 0xC0 == 0x80)
                {
                    self.pos += 1;
                }
            }
            None => return,
        }
        if self.bytes.get(self.pos) == Some(&b'\'') {
            self.pos += 1;
        }
    }

    fn number(&mut self, start: usize, line: u32) {
        // Base prefix + digits/underscores.
        if self.bytes[self.pos] == b'0'
            && matches!(self.peek(1), Some(b'x' | b'o' | b'b' | b'X' | b'O' | b'B'))
        {
            self.pos += 2;
        }
        let digits = |c: u8| c.is_ascii_alphanumeric() || c == b'_';
        while self.bytes.get(self.pos).is_some_and(|&c| digits(c)) {
            self.pos += 1;
        }
        // Fraction — but `1..2` keeps its range operator.
        if self.bytes.get(self.pos) == Some(&b'.')
            && self.peek(1).is_some_and(|c| c.is_ascii_digit())
        {
            self.pos += 1;
            while self.bytes.get(self.pos).is_some_and(|&c| digits(c)) {
                self.pos += 1;
            }
        }
        // Exponent sign, e.g. `1e-5` (the `e` was eaten as a digit).
        if matches!(self.bytes.get(self.pos), Some(b'+' | b'-'))
            && matches!(self.bytes.get(self.pos.wrapping_sub(1)), Some(b'e' | b'E'))
            && self.peek(1).is_some_and(|c| c.is_ascii_digit())
        {
            self.pos += 1;
            while self.bytes.get(self.pos).is_some_and(|&c| digits(c)) {
                self.pos += 1;
            }
        }
        self.push(Kind::Num, start, line);
    }

    fn ident(&mut self, start: usize, line: u32) {
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|&c| c == b'_' || c.is_ascii_alphanumeric() || c >= 0x80)
        {
            self.pos += 1;
        }
        self.push(Kind::Ident, start, line);
    }

    fn punct(&mut self, start: usize, line: u32) {
        const TWO: &[&[u8]] = &[
            b"..", b"::", b"->", b"=>", b"==", b"!=", b"<=", b">=", b"<<", b">>", b"&&", b"||",
        ];
        let rest = &self.bytes[self.pos..];
        if rest.starts_with(b"..=") {
            self.pos += 3;
        } else if TWO.iter().any(|p| rest.starts_with(p)) {
            self.pos += 2;
        } else {
            // Advance one whole UTF-8 scalar so we never split a char.
            self.pos += 1;
            while self
                .bytes
                .get(self.pos)
                .is_some_and(|&c| c >= 0x80 && c & 0xC0 == 0x80)
            {
                self.pos += 1;
            }
        }
        self.push(Kind::Punct, start, line);
    }
}

/// Line ranges (1-based, inclusive) covered by `#[cfg(test)]`-gated
/// items — the regions the hardened-module rules skip.
pub fn test_regions(toks: &[Tok]) -> Vec<(u32, u32)> {
    let code: Vec<&Tok> = code(toks).collect();
    let mut regions = Vec::new();
    let mut i = 0;
    while i < code.len() {
        // Match `# [ cfg ( test ) ]`.
        let is_cfg_test = code[i].text == "#"
            && code.get(i + 1).is_some_and(|t| t.text == "[")
            && code.get(i + 2).is_some_and(|t| t.text == "cfg")
            && code.get(i + 3).is_some_and(|t| t.text == "(")
            && code.get(i + 4).is_some_and(|t| t.text == "test")
            && code.get(i + 5).is_some_and(|t| t.text == ")")
            && code.get(i + 6).is_some_and(|t| t.text == "]");
        if !is_cfg_test {
            i += 1;
            continue;
        }
        let start_line = code[i].line;
        // Find the item's opening brace, then its matching close.
        let mut j = i + 7;
        while j < code.len() && code[j].text != "{" {
            j += 1;
        }
        let mut depth = 0i64;
        let mut end_line = start_line;
        while j < code.len() {
            match code[j].text.as_str() {
                "{" => depth += 1,
                "}" => {
                    depth -= 1;
                    if depth == 0 {
                        end_line = code[j].line;
                        break;
                    }
                }
                _ => {}
            }
            end_line = code[j].line;
            j += 1;
        }
        regions.push((start_line, end_line));
        i = j + 1;
    }
    regions
}

/// Is `line` inside any of `regions`?
pub fn in_regions(regions: &[(u32, u32)], line: u32) -> bool {
    regions.iter().any(|&(a, b)| line >= a && line <= b)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(Kind, String)> {
        lex(src).into_iter().map(|t| (t.kind, t.text)).collect()
    }

    #[test]
    fn comments_strings_and_chars_do_not_bleed() {
        let toks = kinds(r#"let s = "// not a comment"; // real ' comment"#);
        assert_eq!(
            toks.iter().filter(|(k, _)| *k == Kind::Str).count(),
            1,
            "{toks:?}"
        );
        assert_eq!(toks.last().unwrap().0, Kind::Comment);

        let toks = kinds("let c = '\"'; let x = \"y\";");
        assert_eq!(toks.iter().filter(|(k, _)| *k == Kind::Str).count(), 1);
        assert_eq!(toks.iter().filter(|(k, _)| *k == Kind::Char).count(), 1);
    }

    #[test]
    fn raw_strings_swallow_quotes_and_hashes() {
        let toks = kinds(r###"let s = r#"a " b /* c */ d"# ;"###);
        let strs: Vec<_> = toks.iter().filter(|(k, _)| *k == Kind::Str).collect();
        assert_eq!(strs.len(), 1);
        assert_eq!(strs[0].1, r###"r#"a " b /* c */ d"#"###);
        assert!(!toks.iter().any(|(k, _)| *k == Kind::Comment));
    }

    #[test]
    fn lifetimes_are_not_chars() {
        let toks = kinds("fn f<'a>(x: &'a str) -> char { 'a' }");
        assert_eq!(toks.iter().filter(|(k, _)| *k == Kind::Lifetime).count(), 2);
        assert_eq!(toks.iter().filter(|(k, _)| *k == Kind::Char).count(), 1);
    }

    #[test]
    fn nested_block_comments_close_correctly() {
        let toks = kinds("/* a /* b */ c */ ident");
        assert_eq!(toks[0].0, Kind::Comment);
        assert_eq!(toks[1], (Kind::Ident, "ident".to_string()));
    }

    #[test]
    fn line_numbers_track_multiline_tokens() {
        let toks = lex("a\n\"x\ny\"\nb");
        assert_eq!(toks[0].line, 1);
        assert_eq!(toks[1].line, 2); // the string starts on line 2
        assert_eq!(toks[2].line, 4); // b lands after the 2-line string
    }

    #[test]
    fn str_content_strips_delimiters() {
        let t = &lex(r##"r#"abc"#"##)[0];
        assert_eq!(t.str_content(), Some("abc"));
        let t = &lex(r#"b"xy""#)[0];
        assert_eq!(t.str_content(), Some("xy"));
        let t = &lex(r#""pl\"ain""#)[0];
        assert_eq!(t.str_content(), Some("pl\\\"ain"));
    }

    #[test]
    fn test_region_detection() {
        let src = "fn a() {}\n#[cfg(test)]\nmod tests {\n  fn b() { x.unwrap(); }\n}\nfn c() {}\n";
        let toks = lex(src);
        let regions = test_regions(&toks);
        assert_eq!(regions, vec![(2, 5)]);
        assert!(in_regions(&regions, 4));
        assert!(!in_regions(&regions, 6));
    }
}
