//! The inline exception grammar:
//!
//! ```text
//! // repolint: allow(<rule>[, <rule>…]) — <reason>
//! ```
//!
//! The reason is mandatory — an exception nobody can explain is a
//! finding, not an exception. The separator is an em dash (`—`); a
//! double hyphen (`--`) is accepted on input and normalised by
//! the [`Display`](fmt::Display) impl. A pragma suppresses matching findings on its own
//! line (trailing form) and on the line directly below it (preceding
//! form); put it immediately above the offending line, not above the
//! statement.
//!
//! Any comment that contains `repolint:` but fails to parse is itself a
//! finding (`pragma` rule) — a typo must never silently disable a lint.

use crate::lexer::{Kind, Tok};
use std::fmt;

/// One parsed `// repolint: allow(...)` exception.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Pragma {
    /// Rules this pragma suppresses (as written, in order).
    pub rules: Vec<String>,
    /// The mandatory justification.
    pub reason: String,
    /// Line the pragma comment starts on.
    pub line: u32,
}

impl fmt::Display for Pragma {
    /// The canonical spelling (em dash, one space around it).
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "// repolint: allow({}) — {}",
            self.rules.join(", "),
            self.reason
        )
    }
}

/// Why a `repolint:` comment did not parse.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PragmaError {
    pub line: u32,
    pub message: String,
}

/// Scan a file's token stream for pragma comments. Returns the parsed
/// pragmas and the malformed ones. Only comment *tokens* are scanned, so
/// a pragma spelled inside a string literal is inert. Doc comments are
/// documentation, never directives — prose quoting the grammar is fine
/// there. A regular comment is a directive when its body *starts with*
/// `repolint:`; one that merely contains `repolint: allow` elsewhere is
/// a buried (hence malformed) directive.
pub fn scan(toks: &[Tok]) -> (Vec<Pragma>, Vec<PragmaError>) {
    let mut pragmas = Vec::new();
    let mut errors = Vec::new();
    for t in toks {
        if t.kind != Kind::Comment || t.is_doc_comment() {
            continue;
        }
        let body = t
            .text
            .trim_start_matches('/')
            .trim_start_matches('*')
            .trim();
        if !(body.starts_with("repolint:") || body.contains("repolint: allow")) {
            continue;
        }
        match parse_comment(&t.text, t.line) {
            Ok(p) => pragmas.push(p),
            Err(e) => errors.push(e),
        }
    }
    (pragmas, errors)
}

/// Parse one comment's text (delimiters included) as a pragma.
pub fn parse_comment(comment: &str, line: u32) -> Result<Pragma, PragmaError> {
    let err = |message: String| PragmaError { line, message };
    let body = comment
        .trim_start_matches('/')
        .trim_start_matches('*')
        .trim_end_matches("*/")
        .trim();
    let Some(rest) = body.strip_prefix("repolint:") else {
        return Err(err(format!(
            "comment mentions repolint: but does not start with it: `{body}`"
        )));
    };
    let rest = rest.trim_start();
    let Some(rest) = rest.strip_prefix("allow") else {
        return Err(err(
            "expected `allow(<rule>) — <reason>` after `repolint:`".to_string()
        ));
    };
    let rest = rest.trim_start();
    let Some(rest) = rest.strip_prefix('(') else {
        return Err(err("expected `(` after `allow`".to_string()));
    };
    let Some(close) = rest.find(')') else {
        return Err(err("unclosed `(` in allow list".to_string()));
    };
    let rules: Vec<String> = rest[..close]
        .split(',')
        .map(|r| r.trim().to_string())
        .filter(|r| !r.is_empty())
        .collect();
    if rules.is_empty() {
        return Err(err("empty allow list".to_string()));
    }
    for r in &rules {
        if !r
            .chars()
            .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '-')
        {
            return Err(err(format!("malformed rule name `{r}`")));
        }
    }
    let after = rest[close + 1..].trim_start();
    let reason = after
        .strip_prefix('—')
        .or_else(|| after.strip_prefix("--"))
        .map(str::trim)
        .unwrap_or("");
    if reason.is_empty() {
        return Err(err(
            "missing reason (write `— <why this exception is sound>`)".to_string(),
        ));
    }
    Ok(Pragma {
        rules,
        reason: reason.to_string(),
        line,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    #[test]
    fn parses_canonical_and_ascii_separator() {
        for sep in ["—", "--"] {
            let p = parse_comment(
                &format!("// repolint: allow(panic, cap-alloc) {sep} lock poisoning is a bug"),
                7,
            )
            .unwrap();
            assert_eq!(p.rules, vec!["panic", "cap-alloc"]);
            assert_eq!(p.reason, "lock poisoning is a bug");
            assert_eq!(
                p.to_string(),
                "// repolint: allow(panic, cap-alloc) — lock poisoning is a bug"
            );
        }
    }

    #[test]
    fn reason_is_mandatory() {
        assert!(parse_comment("// repolint: allow(panic)", 1).is_err());
        assert!(parse_comment("// repolint: allow(panic) — ", 1).is_err());
        assert!(parse_comment("// repolint: allow() — no rules", 1).is_err());
        assert!(parse_comment("// repolint: deny(panic) — nope", 1).is_err());
    }

    #[test]
    fn pragmas_in_strings_are_inert_and_typos_are_errors() {
        let toks = lex("let s = \"// repolint: allow(panic)\";\n// repolint: alow(panic) — typo\n");
        let (pragmas, errors) = scan(&toks);
        assert!(pragmas.is_empty());
        assert_eq!(errors.len(), 1);
        assert_eq!(errors[0].line, 2);
    }

    #[test]
    fn display_parse_round_trip() {
        let p = Pragma {
            rules: vec!["layering".into()],
            reason: "the bench crate sits above everything".into(),
            line: 3,
        };
        let back = parse_comment(&p.to_string(), 3).unwrap();
        assert_eq!(back, p);
    }
}
