//! repolint — the repo's conventions, enforced as a dependency-free
//! static-analysis pass.
//!
//! The architecture docs state invariants (layering, panic-freedom on
//! untrusted paths, cap-before-allocate, the one-line stderr contract);
//! this crate makes them fail the build instead of a review comment.
//! Everything is hand-rolled — lexer, TOML-subset config reader, JSON
//! reader — because the lint tool must sit *outside* the dependency
//! graph it polices, and the no-network build rules out real parser
//! crates.
//!
//! Flow: [`workspace::Workspace::load`] lexes the tree into a pure
//! in-memory model, each rule family in [`rules`] maps that model to
//! findings, and the engine here layers on config validation, pragma
//! suppression and reporting. See `docs/LINTS.md` for the rule catalog
//! and `repolint.toml` for the machine-readable layer graph.

pub mod config;
pub mod findings;
pub mod jsonmini;
pub mod lexer;
pub mod pragma;
pub mod rules;
pub mod workspace;

use config::Config;
use findings::{known_rule, Finding, Report};
use workspace::Workspace;

/// Engine knobs (the CLI surface, minus paths).
#[derive(Debug, Clone, Copy, Default)]
pub struct Options {
    /// Promote warnings (unused pragmas) to findings — the CI gate.
    pub deny: bool,
}

/// Run every rule family over an already-loaded workspace.
pub fn run(ws: &Workspace, cfg: &Config, opts: Options) -> Report {
    let mut report = Report {
        files_scanned: ws.files.len(),
        ..Default::default()
    };

    // Config drift first: a config describing a tree that no longer
    // exists would silently stop enforcing — that is itself a finding.
    report.findings.extend(validate_config(ws, cfg));

    report.findings.extend(rules::layering::check(ws, cfg));
    report.findings.extend(rules::panic_freedom::check(ws, cfg));
    report.findings.extend(rules::cap_alloc::check(ws, cfg));
    report
        .findings
        .extend(rules::error_contract::check(ws, cfg));
    report.findings.extend(rules::drift::check(ws, cfg));

    for file in &ws.files {
        // Malformed `repolint:` comments and unknown rule names are
        // findings — a typo must never silently disable a lint.
        for err in &file.pragma_errors {
            report.findings.push(Finding {
                rule: "pragma".into(),
                file: file.path.clone(),
                line: err.line,
                message: err.message.clone(),
            });
        }
        for p in &file.pragmas {
            for r in &p.rules {
                if !known_rule(r) {
                    report.findings.push(Finding {
                        rule: "pragma".into(),
                        file: file.path.clone(),
                        line: p.line,
                        message: format!("pragma names unknown rule `{r}`"),
                    });
                }
            }
        }
        for p in report.apply_pragmas(&file.path, &file.pragmas) {
            if p.rules.iter().all(|r| known_rule(r)) {
                report.warnings.push(Finding {
                    rule: "pragma".into(),
                    file: file.path.clone(),
                    line: p.line,
                    message: format!(
                        "pragma `allow({})` suppresses nothing — remove it or move it \
                         next to the finding",
                        p.rules.join(", ")
                    ),
                });
            }
        }
    }

    if opts.deny {
        let promoted = std::mem::take(&mut report.warnings);
        report.findings.extend(promoted);
    }
    report.sort();
    report
}

/// The `config` rule: repolint.toml must describe the tree that exists.
fn validate_config(ws: &Workspace, cfg: &Config) -> Vec<Finding> {
    let mut out = Vec::new();
    let finding = |message: String| Finding {
        rule: "config".into(),
        file: "repolint.toml".into(),
        line: 0,
        message,
    };
    let crate_names: Vec<&str> = ws.crates.iter().map(|c| c.name.as_str()).collect();
    let known_pkg =
        |name: &str| crate_names.contains(&name) || cfg.external_crates.iter().any(|e| e == name);

    for (layer, deps) in cfg.layers.iter().chain(cfg.dev_layers.iter()) {
        if !crate_names.contains(&layer.as_str()) {
            out.push(finding(format!(
                "layer graph names `{layer}`, which is not a workspace crate"
            )));
        }
        for dep in deps {
            if !known_pkg(dep) {
                out.push(finding(format!(
                    "layer `{layer}` allows `{dep}`, which is neither a workspace \
                     crate nor an [external] crate"
                )));
            }
        }
    }
    for m in &cfg.module_order {
        let exists = ws
            .files
            .iter()
            .any(|f| f.path.starts_with(&format!("src/{m}/")) || f.path == format!("src/{m}.rs"));
        if !exists {
            out.push(finding(format!(
                "[modules] order names `{m}`, but src/{m}.rs and src/{m}/ do not exist"
            )));
        }
    }
    for path in &cfg.hardened {
        if ws.file(path).is_none() {
            out.push(finding(format!("[hardened] file `{path}` does not exist")));
        }
    }
    for glob in &cfg.error_files {
        if !ws.files.iter().any(|f| {
            cfg.error_contract_covers(&f.path) && {
                // Attribute the miss to the specific glob, not the set.
                match glob.strip_suffix("/**") {
                    Some(prefix) => f.path.starts_with(prefix),
                    None => f.path == *glob,
                }
            }
        }) {
            out.push(finding(format!(
                "[error-contract] pattern `{glob}` matches no files"
            )));
        }
    }

    let d = &cfg.drift;
    if !d.bench_sources.is_empty()
        && !ws
            .files
            .iter()
            .any(|f| f.path.starts_with(&d.bench_sources))
    {
        out.push(finding(format!(
            "[drift] bench-sources `{}` matches no source files",
            d.bench_sources
        )));
    }
    if !d.scenarios_doc.is_empty() && ws.text(&d.scenarios_doc).is_none() {
        out.push(finding(format!(
            "[drift] scenarios-doc `{}` does not exist",
            d.scenarios_doc
        )));
    }
    if !d.spec_source.is_empty() && ws.file(&d.spec_source).is_none() {
        out.push(finding(format!(
            "[drift] spec-source `{}` does not exist",
            d.spec_source
        )));
    }
    for (key, site) in [("cap-source", &d.cap_source), ("cap-mirror", &d.cap_mirror)] {
        if site.is_empty() {
            continue;
        }
        let Some((path, name)) = site.split_once(':') else {
            out.push(finding(format!(
                "[drift] {key} `{site}` is not `path:CONST`"
            )));
            continue;
        };
        match ws.file(path) {
            None => out.push(finding(format!(
                "[drift] {key} file `{path}` does not exist"
            ))),
            Some(f) => {
                let has = lexer::code(&f.toks).any(|t| t.text == name);
                if !has {
                    out.push(finding(format!(
                        "[drift] {key} const `{name}` not found in `{path}`"
                    )));
                }
            }
        }
    }
    out
}
