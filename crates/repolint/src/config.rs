//! `repolint.toml` — the machine-readable statement of the repo's
//! conventions. Parsed by a deliberately small TOML subset reader
//! (tables, bare/hyphenated keys, string / bool / string-array values,
//! `#` comments) so the tool stays dependency-free.
//!
//! The full schema is documented in `docs/LINTS.md`; a config that
//! names a crate, file or const that no longer exists is reported as a
//! `config` finding by the engine (drift in the config is drift too).

use std::collections::BTreeMap;

/// Parsed `repolint.toml`.
#[derive(Debug, Clone, Default)]
pub struct Config {
    /// Crates satisfied by offline stubs under `vendor/` — usable from
    /// every layer (`[external] crates`).
    pub external_crates: Vec<String>,
    /// `::`-separated path prefixes no crate may import
    /// (`[external] forbidden`) — the stubs' internals.
    pub forbidden_paths: Vec<String>,
    /// `[layers]`: package name → workspace packages it may depend on.
    pub layers: BTreeMap<String, Vec<String>>,
    /// `[dev-layers]`: extra packages allowed as dev-dependencies only.
    pub dev_layers: BTreeMap<String, Vec<String>>,
    /// `[modules] order`: root-crate module layers, highest first.
    pub module_order: Vec<String>,
    /// `[hardened] files`: untrusted-input modules (panic-freedom +
    /// cap-before-allocate enforced), repo-relative paths.
    pub hardened: Vec<String>,
    /// `[error-contract] files`: prefix globs (`dir/**`) or exact paths.
    pub error_files: Vec<String>,
    /// `[error-contract] extra-markers`: function names treated as error
    /// constructors in addition to the built-in patterns.
    pub error_markers: Vec<String>,
    /// `[drift]` keys (see the struct).
    pub drift: DriftConfig,
}

/// The `[drift]` table: where the cross-artifact consistency rules look.
#[derive(Debug, Clone, Default)]
pub struct DriftConfig {
    /// Filename prefix of the gated bench baselines (`BENCH_`).
    pub bench_baselines: String,
    /// Directory holding the criterion bench sources.
    pub bench_sources: String,
    /// The scenario-axis documentation page.
    pub scenarios_doc: String,
    /// The spec source the documented axes must exist in.
    pub spec_source: String,
    /// `path:CONST` — the cap constant that is the source of truth.
    pub cap_source: String,
    /// `path:CONST` — the cap constant that must mirror it.
    pub cap_mirror: String,
}

impl Config {
    /// Parse the TOML-subset text. Unknown tables/keys are errors: a
    /// misspelled section must not silently disable a rule family.
    pub fn parse(text: &str) -> Result<Config, String> {
        let mut cfg = Config::default();
        for (table, key, value) in parse_toml_subset(text)? {
            match (table.as_str(), key.as_str()) {
                ("external", "crates") => cfg.external_crates = value.into_list()?,
                ("external", "forbidden") => cfg.forbidden_paths = value.into_list()?,
                ("layers", _) => {
                    cfg.layers.insert(key, value.into_list()?);
                }
                ("dev-layers", _) => {
                    cfg.dev_layers.insert(key, value.into_list()?);
                }
                ("modules", "order") => cfg.module_order = value.into_list()?,
                ("hardened", "files") => cfg.hardened = value.into_list()?,
                ("error-contract", "files") => cfg.error_files = value.into_list()?,
                ("error-contract", "extra-markers") => cfg.error_markers = value.into_list()?,
                ("drift", "bench-baselines") => cfg.drift.bench_baselines = value.into_string()?,
                ("drift", "bench-sources") => cfg.drift.bench_sources = value.into_string()?,
                ("drift", "scenarios-doc") => cfg.drift.scenarios_doc = value.into_string()?,
                ("drift", "spec-source") => cfg.drift.spec_source = value.into_string()?,
                ("drift", "cap-source") => cfg.drift.cap_source = value.into_string()?,
                ("drift", "cap-mirror") => cfg.drift.cap_mirror = value.into_string()?,
                _ => return Err(format!("repolint.toml: unknown key `{key}` in [{table}]")),
            }
        }
        if cfg.layers.is_empty() {
            return Err("repolint.toml: [layers] must name every workspace crate".to_string());
        }
        Ok(cfg)
    }

    /// Does `path` (repo-relative, `/`-separated) match the
    /// error-contract file list (`dir/**` prefix globs or exact paths)?
    pub fn error_contract_covers(&self, path: &str) -> bool {
        self.error_files
            .iter()
            .any(|g| match g.strip_suffix("/**") {
                Some(prefix) => path.starts_with(prefix) && path.len() > prefix.len(),
                None => path == g,
            })
    }
}

/// A parsed value: string or list of strings.
#[derive(Debug, Clone)]
enum Value {
    Str(String),
    List(Vec<String>),
}

impl Value {
    fn into_list(self) -> Result<Vec<String>, String> {
        match self {
            Value::List(l) => Ok(l),
            Value::Str(s) => Err(format!("expected an array, found string `{s}`")),
        }
    }
    fn into_string(self) -> Result<String, String> {
        match self {
            Value::Str(s) => Ok(s),
            Value::List(_) => Err("expected a string, found an array".to_string()),
        }
    }
}

/// Parse into `(table, key, value)` triples, in file order.
fn parse_toml_subset(text: &str) -> Result<Vec<(String, String, Value)>, String> {
    let mut out = Vec::new();
    let mut table = String::new();
    let mut lines = text.lines().enumerate().peekable();
    while let Some((n, raw)) = lines.next() {
        let line = strip_comment(raw).trim().to_string();
        if line.is_empty() {
            continue;
        }
        if let Some(name) = line.strip_prefix('[') {
            let name = name
                .strip_suffix(']')
                .ok_or_else(|| format!("repolint.toml:{}: unclosed table header", n + 1))?;
            table = name.trim().to_string();
            continue;
        }
        let Some(eq) = line.find('=') else {
            return Err(format!("repolint.toml:{}: expected `key = value`", n + 1));
        };
        let key = line[..eq].trim().trim_matches('"').to_string();
        let mut rest = line[eq + 1..].trim().to_string();
        // Multiline arrays: keep consuming lines until brackets balance.
        while rest.starts_with('[') && !brackets_balance(&rest) {
            let Some((_, cont)) = lines.next() else {
                return Err(format!("repolint.toml:{}: unclosed array", n + 1));
            };
            rest.push(' ');
            rest.push_str(strip_comment(cont).trim());
        }
        let value = parse_value(&rest).map_err(|e| format!("repolint.toml:{}: {e}", n + 1))?;
        out.push((table.clone(), key, value));
    }
    Ok(out)
}

/// Strip a `#` comment, respecting double-quoted strings.
fn strip_comment(line: &str) -> &str {
    let mut in_str = false;
    let mut escaped = false;
    for (i, c) in line.char_indices() {
        match c {
            '\\' if in_str => escaped = !escaped,
            '"' if !escaped => in_str = !in_str,
            '#' if !in_str => return &line[..i],
            _ => escaped = false,
        }
    }
    line
}

fn brackets_balance(s: &str) -> bool {
    let mut depth = 0i64;
    let mut in_str = false;
    for c in s.chars() {
        match c {
            '"' => in_str = !in_str,
            '[' if !in_str => depth += 1,
            ']' if !in_str => depth -= 1,
            _ => {}
        }
    }
    depth == 0
}

fn parse_value(s: &str) -> Result<Value, String> {
    let s = s.trim();
    if let Some(body) = s.strip_prefix('[') {
        let body = body
            .strip_suffix(']')
            .ok_or_else(|| format!("unclosed array `{s}`"))?;
        let mut items = Vec::new();
        for item in split_top_level_commas(body) {
            let item = item.trim();
            if item.is_empty() {
                continue;
            }
            match parse_value(item)? {
                Value::Str(v) => items.push(v),
                Value::List(_) => return Err("nested arrays are not supported".to_string()),
            }
        }
        return Ok(Value::List(items));
    }
    if let Some(body) = s.strip_prefix('"') {
        let body = body
            .strip_suffix('"')
            .ok_or_else(|| format!("unclosed string `{s}`"))?;
        return Ok(Value::Str(body.to_string()));
    }
    Err(format!(
        "unsupported value `{s}` (string or array expected)"
    ))
}

fn split_top_level_commas(s: &str) -> Vec<&str> {
    let mut parts = Vec::new();
    let mut start = 0;
    let mut in_str = false;
    for (i, c) in s.char_indices() {
        match c {
            '"' => in_str = !in_str,
            ',' if !in_str => {
                parts.push(&s[start..i]);
                start = i + 1;
            }
            _ => {}
        }
    }
    parts.push(&s[start..]);
    parts
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_tables_strings_and_multiline_arrays() {
        let cfg = Config::parse(
            r#"
# comment
[external]
crates = ["serde", "rand"] # trailing comment
forbidden = []

[layers]
cachesim = []
plru-core = ["cachesim"]

[modules]
order = [
  "service",  # top
  "scenario",
]

[drift]
bench-baselines = "BENCH_"
"#,
        )
        .unwrap();
        assert_eq!(cfg.external_crates, vec!["serde", "rand"]);
        assert_eq!(cfg.layers["plru-core"], vec!["cachesim"]);
        assert_eq!(cfg.module_order, vec!["service", "scenario"]);
        assert_eq!(cfg.drift.bench_baselines, "BENCH_");
    }

    #[test]
    fn unknown_keys_and_bad_shapes_are_errors() {
        assert!(Config::parse("[layers]\nx = []\n[typo]\nk = \"v\"").is_err());
        assert!(Config::parse("[layers]\nx = \"not a list\"").is_err());
        assert!(Config::parse("no equals sign").is_err());
    }

    #[test]
    fn error_contract_globs() {
        let cfg = Config {
            error_files: vec!["src/**".into(), "crates/x/lib.rs".into()],
            ..Default::default()
        };
        assert!(cfg.error_contract_covers("src/service/protocol.rs"));
        assert!(cfg.error_contract_covers("crates/x/lib.rs"));
        assert!(!cfg.error_contract_covers("crates/x/other.rs"));
        assert!(!cfg.error_contract_covers("src"));
    }
}
