//! Minimal JSON: a full-value parser (for reading `BENCH_*.json`) and a
//! string escaper (for `--json` output). Dependency-free on purpose —
//! pulling the workspace's `serde_json` stub in here would put the lint
//! tool inside the dependency graph it polices.

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<Json>),
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Parse one JSON document (trailing whitespace allowed).
    pub fn parse(text: &str) -> Result<Json, String> {
        let mut p = Parser {
            b: text.as_bytes(),
            i: 0,
        };
        p.ws();
        let v = p.value()?;
        p.ws();
        if p.i != p.b.len() {
            return Err(format!("trailing bytes at offset {}", p.i));
        }
        Ok(v)
    }

    /// Object field lookup.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Array elements (empty for non-arrays).
    pub fn items(&self) -> &[Json] {
        match self {
            Json::Arr(items) => items,
            _ => &[],
        }
    }

    /// String content, if a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }
}

struct Parser<'a> {
    b: &'a [u8],
    i: usize,
}

impl<'a> Parser<'a> {
    fn ws(&mut self) {
        while matches!(self.b.get(self.i), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.i += 1;
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.b.get(self.i) {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.lit("true", Json::Bool(true)),
            Some(b'f') => self.lit("false", Json::Bool(false)),
            Some(b'n') => self.lit("null", Json::Null),
            Some(_) => self.number(),
            None => Err("unexpected end of input".to_string()),
        }
    }

    fn lit(&mut self, word: &str, v: Json) -> Result<Json, String> {
        if self.b[self.i..].starts_with(word.as_bytes()) {
            self.i += word.len();
            Ok(v)
        } else {
            Err(format!("bad literal at offset {}", self.i))
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.i;
        while self
            .b
            .get(self.i)
            .is_some_and(|&c| c.is_ascii_digit() || matches!(c, b'-' | b'+' | b'.' | b'e' | b'E'))
        {
            self.i += 1;
        }
        std::str::from_utf8(&self.b[start..self.i])
            .ok()
            .and_then(|s| s.parse().ok())
            .map(Json::Num)
            .ok_or_else(|| format!("bad number at offset {start}"))
    }

    fn string(&mut self) -> Result<String, String> {
        self.i += 1; // opening quote
        let mut out = String::new();
        loop {
            match self.b.get(self.i) {
                None => return Err("unterminated string".to_string()),
                Some(b'"') => {
                    self.i += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.i += 1;
                    match self.b.get(self.i) {
                        Some(b'n') => out.push('\n'),
                        Some(b't') => out.push('\t'),
                        Some(b'r') => out.push('\r'),
                        Some(b'u') => {
                            let hex = self
                                .b
                                .get(self.i + 1..self.i + 5)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .and_then(|h| u32::from_str_radix(h, 16).ok())
                                .ok_or("bad \\u escape")?;
                            out.push(char::from_u32(hex).unwrap_or('\u{FFFD}'));
                            self.i += 4;
                        }
                        Some(&c) => out.push(c as char),
                        None => return Err("unterminated escape".to_string()),
                    }
                    self.i += 1;
                }
                Some(&c) if c < 0x80 => {
                    out.push(c as char);
                    self.i += 1;
                }
                Some(_) => {
                    // Multi-byte UTF-8: copy the whole scalar.
                    let s = std::str::from_utf8(&self.b[self.i..])
                        .map_err(|_| "bad UTF-8 in string")?;
                    let ch = s.chars().next().ok_or("unterminated string")?;
                    out.push(ch);
                    self.i += ch.len_utf8();
                }
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.i += 1;
        let mut items = Vec::new();
        self.ws();
        if self.b.get(self.i) == Some(&b']') {
            self.i += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.ws();
            items.push(self.value()?);
            self.ws();
            match self.b.get(self.i) {
                Some(b',') => self.i += 1,
                Some(b']') => {
                    self.i += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(format!("expected `,` or `]` at offset {}", self.i)),
            }
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.i += 1;
        let mut fields = Vec::new();
        self.ws();
        if self.b.get(self.i) == Some(&b'}') {
            self.i += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.ws();
            if self.b.get(self.i) != Some(&b'"') {
                return Err(format!("expected object key at offset {}", self.i));
            }
            let key = self.string()?;
            self.ws();
            if self.b.get(self.i) != Some(&b':') {
                return Err(format!("expected `:` at offset {}", self.i));
            }
            self.i += 1;
            self.ws();
            fields.push((key, self.value()?));
            self.ws();
            match self.b.get(self.i) {
                Some(b',') => self.i += 1,
                Some(b'}') => {
                    self.i += 1;
                    return Ok(Json::Obj(fields));
                }
                _ => return Err(format!("expected `,` or `}}` at offset {}", self.i)),
            }
        }
    }
}

/// Escape `s` for embedding in a JSON string literal.
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_a_bench_baseline_shape() {
        let v = Json::parse(
            r#"{"bench":"policies","results":[{"id":"cache_access/Lru","mean_ns":1.5e3}]}"#,
        )
        .unwrap();
        let ids: Vec<&str> = v
            .get("results")
            .unwrap()
            .items()
            .iter()
            .filter_map(|r| r.get("id").and_then(Json::as_str))
            .collect();
        assert_eq!(ids, vec!["cache_access/Lru"]);
    }

    #[test]
    fn rejects_garbage() {
        assert!(Json::parse("{").is_err());
        assert!(Json::parse("[1,]").is_err());
        assert!(Json::parse("{\"a\" 1}").is_err());
        assert!(Json::parse("123 tail").is_err());
    }

    #[test]
    fn escape_round_trips_through_parse() {
        let s = "a\"b\\c\nd\te\u{1F600}";
        let quoted = format!("\"{}\"", escape(s));
        assert_eq!(Json::parse(&quoted).unwrap(), Json::Str(s.to_string()));
    }
}
