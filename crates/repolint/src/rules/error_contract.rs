//! Rule `error-style` — the one-line stderr contract.
//!
//! Every user-facing tool here reports failures as a single lowercase
//! line on stderr (`sweep: journal corrupt at line 14`). This rule
//! checks the string literals that feed that contract, in the files
//! matched by `[error-contract] files`:
//!
//! * literals inside `Err(…)` expressions;
//! * literals passed to error constructors — any `XxxError::yyy(…)`
//!   path call, plus function names from `[error-contract]
//!   extra-markers`;
//! * literals in `write!`/`writeln!` bodies inside a
//!   `impl Display for XxxError` block.
//!
//! Each such literal must be single-line (no `\n`, raw or escaped) and
//! must not start with an uppercase ASCII letter — the message is
//! usually embedded mid-sentence after a `tool:` prefix. Format strings
//! that start with a placeholder (`"{path}: bad magic"`) are fine.

use crate::config::Config;
use crate::findings::Finding;
use crate::lexer::{code, Kind, Tok};
use crate::workspace::Workspace;

pub fn check(ws: &Workspace, cfg: &Config) -> Vec<Finding> {
    let mut out = Vec::new();
    for file in &ws.files {
        if !cfg.error_contract_covers(&file.path) {
            continue;
        }
        let toks: Vec<&Tok> = code(&file.toks).collect();
        let display_regions = display_impl_regions(&toks);
        for i in 0..toks.len() {
            if file.in_test(toks[i].line) {
                continue;
            }
            if let Some(span) = error_call(&toks, i, cfg, &display_regions) {
                check_literals(&toks, i, span, &file.path, &mut out);
            }
        }
    }
    out
}

/// If token `i` opens an error-message context, return how deep to scan
/// (the index just past its opening `(`).
fn error_call(
    toks: &[&Tok],
    i: usize,
    cfg: &Config,
    display_regions: &[(usize, usize)],
) -> Option<usize> {
    let t = toks[i];
    if t.kind != Kind::Ident {
        return None;
    }
    let open_paren = toks.get(i + 1).is_some_and(|n| n.text == "(");

    // `Err(` — also matches `Result::Err(`; fine, same contract.
    if t.text == "Err" && open_paren {
        return Some(i + 2);
    }
    // `XxxError::yyy(`.
    if t.text.ends_with("Error")
        && toks.get(i + 1).is_some_and(|n| n.text == "::")
        && toks.get(i + 2).is_some_and(|n| n.kind == Kind::Ident)
        && toks.get(i + 3).is_some_and(|n| n.text == "(")
    {
        return Some(i + 4);
    }
    // Configured extra markers: `bail(`, `spec_err(`, …
    if cfg.error_markers.iter().any(|m| m == &t.text) && open_paren {
        return Some(i + 2);
    }
    // `write!(` / `writeln!(` inside `impl Display for XxxError`.
    if (t.text == "write" || t.text == "writeln")
        && toks.get(i + 1).is_some_and(|n| n.text == "!")
        && toks.get(i + 2).is_some_and(|n| n.text == "(")
        && display_regions.iter().any(|&(a, b)| a <= i && i < b)
    {
        return Some(i + 3);
    }
    None
}

/// Token-index ranges of `impl … Display for XxxError { … }` bodies.
fn display_impl_regions(toks: &[&Tok]) -> Vec<(usize, usize)> {
    let mut regions = Vec::new();
    for i in 0..toks.len() {
        if !(toks[i].kind == Kind::Ident && toks[i].text == "impl") {
            continue;
        }
        // Scan forward to the opening `{`, remembering whether we saw
        // `Display for <ident ending in Error>` on the way.
        let mut saw_display = false;
        let mut saw_error_target = false;
        let mut j = i + 1;
        while j < toks.len() && toks[j].text != "{" && toks[j].text != ";" {
            if toks[j].text == "Display" {
                saw_display = true;
            }
            if toks[j].text == "for" && toks.get(j + 1).is_some_and(|n| n.text.ends_with("Error")) {
                saw_error_target = true;
            }
            j += 1;
        }
        if !(saw_display && saw_error_target && j < toks.len() && toks[j].text == "{") {
            continue;
        }
        let mut depth = 1;
        let mut k = j + 1;
        while k < toks.len() && depth > 0 {
            match toks[k].text.as_str() {
                "{" => depth += 1,
                "}" => depth -= 1,
                _ => {}
            }
            k += 1;
        }
        regions.push((j, k));
    }
    regions
}

/// Check every string literal inside the call starting at `start` (the
/// token just past the opening delimiter).
fn check_literals(toks: &[&Tok], head: usize, start: usize, path: &str, out: &mut Vec<Finding>) {
    let mut depth = 1;
    let mut j = start;
    while j < toks.len() && depth > 0 {
        match toks[j].text.as_str() {
            "(" | "[" | "{" => depth += 1,
            ")" | "]" | "}" => depth -= 1,
            _ => {
                let t = toks[j];
                if depth >= 1 && t.kind == Kind::Str {
                    if let Some(content) = t.str_content() {
                        check_one(content, t.line, path, out);
                    }
                }
            }
        }
        j += 1;
    }
    let _ = head;
}

/// Does the literal produce a newline at runtime? A `\n` escape or a
/// bare newline does; a backslash-newline *continuation* (the idiomatic
/// way to wrap a long one-line message in source) does not.
fn is_multiline(content: &str) -> bool {
    let mut chars = content.chars();
    while let Some(c) = chars.next() {
        match c {
            // \\, \" and \<newline> continuations stay single-line.
            '\\' => {
                if let Some('n') = chars.next() {
                    return true;
                }
            }
            '\n' => return true,
            _ => {}
        }
    }
    false
}

fn check_one(content: &str, line: u32, path: &str, out: &mut Vec<Finding>) {
    let finding = |message: String| Finding {
        rule: "error-style".into(),
        file: path.to_string(),
        line,
        message,
    };
    if is_multiline(content) {
        out.push(finding(
            "error message spans multiple lines — the stderr contract is one line per failure"
                .to_string(),
        ));
    }
    // Title-case start only; an all-caps acronym (`NRU scale…`, `I/O`)
    // is not sentence case and reads fine mid-line.
    let mut chars = content.chars();
    let title_case = chars.next().is_some_and(|c| c.is_ascii_uppercase())
        && chars.next().is_some_and(|c| c.is_ascii_lowercase());
    if title_case {
        out.push(finding(format!(
            "error message starts uppercase (`{}…`) — messages embed after a `tool:` \
             prefix, start lowercase",
            &content[..content.len().min(24)]
        )));
    }
}
