//! The rule families. Each rule is a pure function over the
//! [`Workspace`](crate::workspace::Workspace) model and the
//! [`Config`](crate::config::Config) — no filesystem access — returning
//! raw findings; pragma suppression happens centrally in the engine.

pub mod cap_alloc;
pub mod drift;
pub mod error_contract;
pub mod layering;
pub mod panic_freedom;
