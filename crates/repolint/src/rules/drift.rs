//! Rule `drift` — cross-artifact consistency. Three checks, each
//! pointing at things that historically desynchronise silently:
//!
//! 1. **Bench ids**: every `results[].id` in the gated `BENCH_*.json`
//!    baselines must be producible by the bench sources. Criterion ids
//!    are `group/leaf`; most leaves are formatted at runtime, so the
//!    check is tiered: exact full-id literal anywhere in the bench
//!    sources passes; otherwise the group name must appear as a string
//!    literal, and in that same file the leaf must appear as a literal
//!    or the file must build ids with `format!`.
//! 2. **Scenario axes**: every `` **`axis`** `` documented in
//!    `docs/SCENARIOS.md` must exist as an identifier in
//!    `src/scenario/spec.rs` — docs may lag the code, never invent it.
//! 3. **Paired caps**: the `[drift] cap-mirror` constant must be
//!    *defined from* the `cap-source` constant (its initializer names
//!    it) or carry a token-identical initializer — the frame codec and
//!    the trace meta cap agree by construction, not by coincidence.

use crate::config::Config;
use crate::findings::Finding;
use crate::jsonmini::Json;
use crate::lexer::{code, Kind, Tok};
use crate::workspace::Workspace;

pub fn check(ws: &Workspace, cfg: &Config) -> Vec<Finding> {
    let mut out = Vec::new();
    check_bench_ids(ws, cfg, &mut out);
    check_scenario_axes(ws, cfg, &mut out);
    check_cap_pair(ws, cfg, &mut out);
    out
}

fn check_bench_ids(ws: &Workspace, cfg: &Config, out: &mut Vec<Finding>) {
    let prefix = &cfg.drift.bench_baselines;
    if prefix.is_empty() {
        return;
    }
    // String literals per bench-source file, plus whether it format!s.
    let mut sources: Vec<(&str, Vec<String>, bool)> = Vec::new();
    for file in &ws.files {
        if !file.path.starts_with(&cfg.drift.bench_sources) {
            continue;
        }
        let mut lits = Vec::new();
        let mut formats = false;
        for t in code(&file.toks) {
            if t.kind == Kind::Str {
                if let Some(c) = t.str_content() {
                    lits.push(c.to_string());
                }
            }
            if t.kind == Kind::Ident && (t.text == "format" || t.text == "BenchmarkId") {
                formats = true;
            }
        }
        sources.push((&file.path, lits, formats));
    }

    for (path, text) in &ws.texts {
        let name = path.rsplit('/').next().unwrap_or(path);
        if !(name.starts_with(prefix.as_str()) && name.ends_with(".json")) {
            continue;
        }
        let doc = match Json::parse(text) {
            Ok(doc) => doc,
            Err(e) => {
                out.push(Finding {
                    rule: "drift".into(),
                    file: path.clone(),
                    line: 0,
                    message: format!("baseline is not valid JSON: {e}"),
                });
                continue;
            }
        };
        let results = doc.get("results").map(Json::items).unwrap_or(&[]);
        for r in results {
            let Some(id) = r.get("id").and_then(Json::as_str) else {
                continue;
            };
            if !id_is_producible(id, &sources) {
                out.push(Finding {
                    rule: "drift".into(),
                    file: path.clone(),
                    line: 0,
                    message: format!(
                        "bench id `{id}` has no matching group/leaf literal under {} — \
                         stale baseline or renamed bench",
                        cfg.drift.bench_sources
                    ),
                });
            }
        }
    }
}

fn id_is_producible(id: &str, sources: &[(&str, Vec<String>, bool)]) -> bool {
    // Tier 1: the whole id is a literal somewhere.
    if sources
        .iter()
        .any(|(_, lits, _)| lits.iter().any(|l| l == id))
    {
        return true;
    }
    // Tier 2: group literal, with the leaf resolvable in the same file.
    let (group, leaf) = match id.split_once('/') {
        Some(pair) => pair,
        None => return false,
    };
    sources.iter().any(|(_, lits, formats)| {
        lits.iter().any(|l| l == group)
            && (*formats || lits.iter().any(|l| l == leaf || l.contains(leaf)))
    })
}

fn check_scenario_axes(ws: &Workspace, cfg: &Config, out: &mut Vec<Finding>) {
    let doc_path = &cfg.drift.scenarios_doc;
    if doc_path.is_empty() {
        return;
    }
    let (Some(doc), Some(spec)) = (ws.text(doc_path), ws.file(&cfg.drift.spec_source)) else {
        return; // missing paths are `config` findings, reported by the engine
    };
    let spec_idents: Vec<&str> = code(&spec.toks)
        .filter(|t| t.kind == Kind::Ident)
        .map(|t| t.text.as_str())
        .collect();
    for (n, line) in doc.lines().enumerate() {
        for axis in bold_code_idents(line) {
            if !spec_idents.contains(&axis) {
                out.push(Finding {
                    rule: "drift".into(),
                    file: doc_path.clone(),
                    line: (n + 1) as u32,
                    message: format!(
                        "documented scenario axis `{axis}` does not exist in {}",
                        cfg.drift.spec_source
                    ),
                });
            }
        }
    }
}

/// Extract `ident` from every ``**`ident`**`` occurrence in a line —
/// the SCENARIOS.md convention for naming a spec axis.
fn bold_code_idents(line: &str) -> Vec<&str> {
    let mut out = Vec::new();
    let mut rest = line;
    while let Some(start) = rest.find("**`") {
        let after = &rest[start + 3..];
        let Some(end) = after.find("`**") else { break };
        let candidate = &after[..end];
        if !candidate.is_empty()
            && candidate
                .chars()
                .all(|c| c.is_ascii_alphanumeric() || c == '_')
        {
            out.push(candidate);
        }
        rest = &after[end + 3..];
    }
    out
}

fn check_cap_pair(ws: &Workspace, cfg: &Config, out: &mut Vec<Finding>) {
    let (Some((src_path, src_const)), Some((mir_path, mir_const))) = (
        split_site(&cfg.drift.cap_source),
        split_site(&cfg.drift.cap_mirror),
    ) else {
        return;
    };
    let (Some(src_file), Some(mir_file)) = (ws.file(src_path), ws.file(mir_path)) else {
        return; // config findings cover missing files
    };
    let Some(src_init) = const_initializer(&src_file.toks, src_const) else {
        return;
    };
    let Some((mir_line, mir_init)) = const_initializer(&mir_file.toks, mir_const) else {
        return;
    };
    let names_source = mir_init.iter().any(|t| *t == src_const);
    let identical = src_init.1 == mir_init;
    if !(names_source || identical) {
        out.push(Finding {
            rule: "drift".into(),
            file: mir_path.to_string(),
            line: mir_line,
            message: format!(
                "`{mir_const}` must be defined from `{src_const}` (or carry an identical \
                 initializer) — the paired caps have drifted"
            ),
        });
    }
}

fn split_site(s: &str) -> Option<(&str, &str)> {
    s.split_once(':')
        .filter(|(p, c)| !p.is_empty() && !c.is_empty())
}

/// `(line, initializer-token-texts)` of `const NAME … = <init> ;`.
fn const_initializer(toks: &[Tok], name: &str) -> Option<(u32, Vec<String>)> {
    let toks: Vec<&Tok> = code(toks).collect();
    for i in 0..toks.len() {
        if !(toks[i].kind == Kind::Ident
            && toks[i].text == "const"
            && toks.get(i + 1).is_some_and(|t| t.text == name))
        {
            continue;
        }
        let line = toks[i + 1].line;
        let eq = (i + 2..toks.len()).find(|&j| toks[j].text == "=")?;
        let end = (eq + 1..toks.len()).find(|&j| toks[j].text == ";")?;
        let init = toks[eq + 1..end].iter().map(|t| t.text.clone()).collect();
        return Some((line, init));
    }
    None
}
