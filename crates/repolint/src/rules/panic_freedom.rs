//! Rule `panic` — panic-freedom on untrusted-input paths.
//!
//! Inside the `[hardened] files` modules (wire decoders, journal
//! loaders, spec parsing) a malformed input must surface as a readable
//! one-line error, never a panic. Forbidden outside `#[cfg(test)]`
//! regions:
//!
//! * `.unwrap()` / `.expect(…)` calls;
//! * the aborting macros `panic!`, `assert!`, `assert_eq!`,
//!   `assert_ne!`, `unreachable!`, `todo!`, `unimplemented!`;
//! * indexing/slicing with a *computed* index (`buf[i]`,
//!   `buf[..len]`) — use `.get(..)` and return an error. Indexing with
//!   literal or SCREAMING_CASE-const bounds (`rest[3..7]`, `b[0]`) is
//!   allowed: it cannot drift with input data.
//!
//! `debug_assert!` stays legal — it documents internal invariants and
//! compiles out of release builds, so hostile input cannot abort a
//! production process through it.

use crate::config::Config;
use crate::findings::Finding;
use crate::lexer::{code, Kind, Tok};
use crate::workspace::Workspace;

const MACROS: &[&str] = &[
    "panic",
    "assert",
    "assert_eq",
    "assert_ne",
    "unreachable",
    "todo",
    "unimplemented",
];

pub fn check(ws: &Workspace, cfg: &Config) -> Vec<Finding> {
    let mut out = Vec::new();
    for file in &ws.files {
        if !cfg.hardened.contains(&file.path) {
            continue;
        }
        let toks: Vec<&Tok> = code(&file.toks).collect();
        for i in 0..toks.len() {
            if file.in_test(toks[i].line) {
                continue;
            }
            check_site(&toks, i, &file.path, &mut out);
        }
    }
    out
}

fn check_site(toks: &[&Tok], i: usize, path: &str, out: &mut Vec<Finding>) {
    let t = toks[i];
    let finding = |line: u32, message: String| Finding {
        rule: "panic".into(),
        file: path.to_string(),
        line,
        message,
    };

    // `.unwrap()` / `.expect(`.
    if t.kind == Kind::Ident
        && (t.text == "unwrap" || t.text == "expect")
        && i > 0
        && toks[i - 1].text == "."
        && toks.get(i + 1).is_some_and(|n| n.text == "(")
    {
        out.push(finding(
            t.line,
            format!(
                ".{}() on a hardened path — return the error \
                 (or pragma-annotate why it cannot fire)",
                t.text
            ),
        ));
    }

    // Aborting macros: `name!(` — but not `debug_assert*!`.
    if t.kind == Kind::Ident
        && MACROS.contains(&t.text.as_str())
        && toks.get(i + 1).is_some_and(|n| n.text == "!")
        && (i == 0 || toks[i - 1].text != ".")
    {
        out.push(finding(
            t.line,
            format!(
                "`{}!` aborts on a hardened path — return an error instead",
                t.text
            ),
        ));
    }

    // Computed indexing: `expr [ …ident… ]` in expression position.
    if t.text == "["
        && i > 0
        && (toks[i - 1].kind == Kind::Ident || toks[i - 1].text == ")" || toks[i - 1].text == "]")
    {
        // `vec![…]` and attribute `#[…]` never get here: their `[` is
        // preceded by `!` / `#`.
        let mut depth = 1;
        let mut j = i + 1;
        let mut risky: Option<String> = None;
        while j < toks.len() && depth > 0 {
            match toks[j].text.as_str() {
                "[" => depth += 1,
                "]" => depth -= 1,
                _ => {
                    let tj = toks[j];
                    if depth >= 1
                        && tj.kind == Kind::Ident
                        && risky.is_none()
                        && !is_const_like(&tj.text)
                    {
                        risky = Some(tj.text.clone());
                    }
                }
            }
            j += 1;
        }
        if let Some(ident) = risky {
            out.push(finding(
                t.line,
                format!(
                    "indexing with computed `{ident}` on a hardened path — \
                     use .get(..) and return an error"
                ),
            ));
        }
    }
}

/// Idents that cannot carry untrusted magnitude: SCREAMING_CASE consts
/// and the primitive-cast keywords that show up inside index brackets.
fn is_const_like(ident: &str) -> bool {
    let screaming = ident
        .chars()
        .all(|c| c.is_ascii_uppercase() || c.is_ascii_digit() || c == '_')
        && ident.chars().any(|c| c.is_ascii_uppercase());
    screaming
        || matches!(
            ident,
            "as" | "usize" | "u8" | "u16" | "u32" | "u64" | "isize" | "i8" | "i16" | "i32" | "i64"
        )
}
