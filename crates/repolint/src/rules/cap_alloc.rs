//! Rule `cap-alloc` — cap every untrusted size before allocating from
//! it (the PR-8 hardening convention).
//!
//! Inside `[hardened] files`, any `with_capacity(n)`, `vec![x; n]` or
//! `.take(n)` whose `n` involves a runtime value must be *dominated* by
//! a named cap: either the argument itself is capped in place
//! (`n.min(MAX_X)`, or the argument is a SCREAMING_CASE constant), or
//! the enclosing function compares something against a
//! SCREAMING_CASE cap constant (`if n > MAX_X { return Err(..) }`)
//! before the allocation site.
//!
//! This is a token-level dominance check, not dataflow — it cannot see
//! *which* variable was compared. It exists to catch the regression
//! that actually happened (a decoded length allocated with no cap in
//! sight); `// repolint: allow(cap-alloc) — …` covers the cases it
//! cannot reason about.

use crate::config::Config;
use crate::findings::Finding;
use crate::lexer::{code, Kind, Tok};
use crate::workspace::Workspace;

pub fn check(ws: &Workspace, cfg: &Config) -> Vec<Finding> {
    let mut out = Vec::new();
    for file in &ws.files {
        if !cfg.hardened.contains(&file.path) {
            continue;
        }
        let toks: Vec<&Tok> = code(&file.toks).collect();
        for i in 0..toks.len() {
            if file.in_test(toks[i].line) {
                continue;
            }
            if let Some((what, args_start)) = alloc_site(&toks, i) {
                check_alloc(&toks, i, args_start, what, &file.path, &mut out);
            }
        }
    }
    out
}

/// Is token `i` the head of an allocation/consumption site? Returns the
/// human label and the index of the opening `(` / `;` of the size args.
fn alloc_site(toks: &[&Tok], i: usize) -> Option<(&'static str, usize)> {
    let t = toks[i];
    if t.kind != Kind::Ident {
        return None;
    }
    match t.text.as_str() {
        "with_capacity" if toks.get(i + 1).is_some_and(|n| n.text == "(") => {
            Some(("with_capacity", i + 1))
        }
        "take"
            if i > 0
                && toks[i - 1].text == "."
                && toks.get(i + 1).is_some_and(|n| n.text == "(") =>
        {
            Some(("take", i + 1))
        }
        // `vec![elem; n]`: report the repeat-count expression.
        "vec"
            if toks.get(i + 1).is_some_and(|n| n.text == "!")
                && toks.get(i + 2).is_some_and(|n| n.text == "[") =>
        {
            let mut depth = 1;
            let mut j = i + 3;
            while j < toks.len() && depth > 0 {
                match toks[j].text.as_str() {
                    "[" | "(" | "{" => depth += 1,
                    "]" | ")" | "}" => depth -= 1,
                    ";" if depth == 1 => return Some(("vec![_; n]", j)),
                    _ => {}
                }
                j += 1;
            }
            None
        }
        _ => None,
    }
}

fn check_alloc(
    toks: &[&Tok],
    site: usize,
    args_start: usize,
    what: &'static str,
    path: &str,
    out: &mut Vec<Finding>,
) {
    // Collect the size-argument tokens (to the matching close bracket).
    let (open, close) = match toks[args_start].text.as_str() {
        "(" => ("(", ")"),
        _ => ("[", "]"), // the `;` of vec![_; n] — scan to the `]`
    };
    let mut depth = 1;
    let mut j = args_start + 1;
    let mut args: Vec<&Tok> = Vec::new();
    while j < toks.len() && depth > 0 {
        let text = toks[j].text.as_str();
        if text == open || (open == "[" && text == "[") {
            depth += 1;
        } else if text == close {
            depth -= 1;
            if depth == 0 {
                break;
            }
        }
        args.push(toks[j]);
        j += 1;
    }

    // A size with no runtime inputs (literals, SCREAMING consts, casts)
    // cannot be hostile; a SCREAMING const anywhere in the argument also
    // passes (`len.min(MAX_X)`, `with_capacity(CHUNK_RECORDS)`).
    let runtime_inputs = args
        .iter()
        .any(|t| t.kind == Kind::Ident && !is_benign_ident(&t.text));
    let self_capped = args.iter().any(|t| is_cap_const(&t.text));
    if !runtime_inputs || self_capped {
        return;
    }

    // Dominance: from the enclosing `fn` head to the site, some token
    // must be a SCREAMING cap const next to a comparison or `.min(`.
    let fn_start = (0..site)
        .rev()
        .find(|&k| toks[k].kind == Kind::Ident && toks[k].text == "fn")
        .unwrap_or(0);
    let window = &toks[fn_start..site];
    let guarded = window.iter().enumerate().any(|(k, t)| {
        is_cap_const(&t.text)
            && window
                .iter()
                .skip(k.saturating_sub(3))
                .take(7)
                .any(|n| matches!(n.text.as_str(), ">" | "<" | ">=" | "<=" | "min" | "clamp"))
    });
    if !guarded {
        out.push(Finding {
            rule: "cap-alloc".into(),
            file: path.to_string(),
            line: toks[site].line,
            message: format!(
                "`{what}` sized from a runtime value with no dominating \
                 MAX_* cap check in this function — cap the size before \
                 allocating (see docs/LINTS.md)"
            ),
        });
    }
}

/// SCREAMING_CASE ident — a named cap (or other compile-time constant).
fn is_cap_const(ident: &str) -> bool {
    ident.len() >= 2
        && ident
            .chars()
            .all(|c| c.is_ascii_uppercase() || c.is_ascii_digit() || c == '_')
        && ident.chars().any(|c| c.is_ascii_uppercase())
}

/// Idents in a size expression that are not runtime data.
fn is_benign_ident(ident: &str) -> bool {
    is_cap_const(ident)
        || matches!(
            ident,
            "as" | "usize"
                | "u8"
                | "u16"
                | "u32"
                | "u64"
                | "isize"
                | "i8"
                | "i16"
                | "i32"
                | "i64"
                | "f32"
                | "f64"
                | "min"
                | "max"
                | "len"
                | "size_of"
                | "mem"
                | "std"
        )
}
