//! Rule `layering` — the ARCHITECTURE.md dependency discipline,
//! machine-checked at three levels:
//!
//! 1. **Manifests**: each crate's `[dependencies]` /
//!    `[dev-dependencies]` may only name crates the `[layers]` /
//!    `[dev-layers]` tables allow (vendor stubs from `[external]` are an
//!    unlayered utility tier available everywhere).
//! 2. **Sources**: every `use`, `extern crate` and inline path
//!    qualifier (`plru_core::Scheme`) is resolved to its crate and
//!    checked against the same graph — a manifest edge someone forgot
//!    to remove does not excuse an import. Paths matching
//!    `[external] forbidden` (stub internals) are flagged everywhere.
//! 3. **Root modules**: inside the root crate, `[modules] order` lists
//!    the layers highest-first (`bin` → `service` → `scenario` →
//!    `engine`); a module may reach down the list, never up.

use crate::config::Config;
use crate::findings::Finding;
use crate::lexer::{code, Kind, Tok};
use crate::workspace::{SourceFile, Workspace};
use std::collections::BTreeMap;

pub fn check(ws: &Workspace, cfg: &Config) -> Vec<Finding> {
    let mut out = Vec::new();
    check_manifests(ws, cfg, &mut out);

    // ident (underscored) → package name, for path resolution.
    let mut ident_to_pkg = BTreeMap::new();
    for name in cfg.layers.keys().chain(cfg.external_crates.iter()) {
        ident_to_pkg.insert(name.replace('-', "_"), name.clone());
    }

    let root_pkg = ws
        .crates
        .first()
        .map(|c| c.name.clone())
        .unwrap_or_default();
    for file in &ws.files {
        check_file(file, cfg, &ident_to_pkg, &root_pkg, &mut out);
    }
    out
}

fn check_manifests(ws: &Workspace, cfg: &Config, out: &mut Vec<Finding>) {
    for krate in &ws.crates {
        let manifest = if krate.dir.is_empty() {
            "Cargo.toml".to_string()
        } else {
            format!("{}/Cargo.toml", krate.dir)
        };
        let Some(allowed) = cfg.layers.get(&krate.name) else {
            out.push(Finding {
                rule: "layering".into(),
                file: manifest,
                line: 0,
                message: format!(
                    "crate `{}` is not in repolint.toml [layers] — add it to the layer graph",
                    krate.name
                ),
            });
            continue;
        };
        let dev_extra = cfg.dev_layers.get(&krate.name);
        for (dep, dev) in krate
            .deps
            .iter()
            .map(|d| (d, false))
            .chain(krate.dev_deps.iter().map(|d| (d, true)))
        {
            let ok = cfg.external_crates.contains(dep)
                || allowed.contains(dep)
                || (dev && dev_extra.is_some_and(|e| e.contains(dep)));
            if !ok {
                out.push(Finding {
                    rule: "layering".into(),
                    file: manifest.clone(),
                    line: 0,
                    message: format!(
                        "crate `{}` must not depend on `{dep}` ({} per the layer graph)",
                        krate.name,
                        if dev {
                            "not even as a dev-dependency"
                        } else {
                            "not an allowed layer edge"
                        },
                    ),
                });
            }
        }
    }
}

fn check_file(
    file: &SourceFile,
    cfg: &Config,
    ident_to_pkg: &BTreeMap<String, String>,
    root_pkg: &str,
    out: &mut Vec<Finding>,
) {
    let toks: Vec<&Tok> = code(&file.toks).collect();
    let allowed = cfg.layers.get(&file.krate);
    let dev_extra = cfg.dev_layers.get(&file.krate);
    // Test code (integration tests, benches, #[cfg(test)] mods) gets the
    // dev-dependency edges on top of the runtime ones.
    let dev_ok = |line: u32| file.is_test_code() || file.in_test(line);

    // Which module layer (index into order, 0 = highest) is this file in?
    let own_layer = (file.krate == root_pkg)
        .then(|| {
            cfg.module_order.iter().position(|m| {
                file.path.starts_with(&format!("src/{m}/")) || file.path == format!("src/{m}.rs")
            })
        })
        .flatten();

    let mut i = 0;
    while i < toks.len() {
        let t = toks[i];
        // `extern crate foo;`
        if t.kind == Kind::Ident
            && t.text == "extern"
            && toks.get(i + 1).is_some_and(|n| n.text == "crate")
        {
            if let Some(name) = toks.get(i + 2).filter(|n| n.kind == Kind::Ident) {
                check_crate_ref(
                    &name.text,
                    name.line,
                    file,
                    ident_to_pkg,
                    cfg,
                    allowed,
                    dev_extra,
                    &dev_ok,
                    out,
                );
            }
            i += 3;
            continue;
        }
        // `foo::...` path qualifier (also covers `use foo::...`).
        if t.kind == Kind::Ident && toks.get(i + 1).is_some_and(|n| n.text == "::") {
            // Skip mid-path segments: `a::b::c` only resolves `a`.
            let is_path_head = i == 0 || toks[i - 1].text != "::";
            if is_path_head {
                if t.text == "crate" {
                    check_module_ref(&toks, i, file, cfg, own_layer, out);
                } else {
                    check_crate_ref(
                        &t.text,
                        t.line,
                        file,
                        ident_to_pkg,
                        cfg,
                        allowed,
                        dev_extra,
                        &dev_ok,
                        out,
                    );
                }
                check_forbidden(&toks, i, file, cfg, out);
            }
        }
        i += 1;
    }
}

#[allow(clippy::too_many_arguments)]
fn check_crate_ref(
    ident: &str,
    line: u32,
    file: &SourceFile,
    ident_to_pkg: &BTreeMap<String, String>,
    cfg: &Config,
    allowed: Option<&Vec<String>>,
    dev_extra: Option<&Vec<String>>,
    dev_ok: &dyn Fn(u32) -> bool,
    out: &mut Vec<Finding>,
) {
    let Some(pkg) = ident_to_pkg.get(ident) else {
        return; // std, core, alloc, local modules, …
    };
    if *pkg == file.krate || cfg.external_crates.contains(pkg) {
        return;
    }
    let ok = allowed.is_some_and(|a| a.contains(pkg))
        || (dev_ok(line) && dev_extra.is_some_and(|e| e.contains(pkg)));
    if !ok {
        out.push(Finding {
            rule: "layering".into(),
            file: file.path.clone(),
            line,
            message: format!(
                "`{}` must not reach into `{pkg}` — not an allowed edge in the layer graph",
                file.krate
            ),
        });
    }
}

/// `crate::<seg>` inside the root crate: `seg` must not sit *above* the
/// file's own module layer. Handles `crate::{a, b}` grouped imports.
fn check_module_ref(
    toks: &[&Tok],
    i: usize,
    file: &SourceFile,
    cfg: &Config,
    own_layer: Option<usize>,
    out: &mut Vec<Finding>,
) {
    let Some(own) = own_layer else { return };
    let mut segs: Vec<(&str, u32)> = Vec::new();
    match toks.get(i + 2) {
        Some(t) if t.kind == Kind::Ident => segs.push((&t.text, t.line)),
        Some(t) if t.text == "{" => {
            let mut depth = 1;
            let mut j = i + 3;
            while j < toks.len() && depth > 0 {
                match toks[j].text.as_str() {
                    "{" => depth += 1,
                    "}" => depth -= 1,
                    _ => {
                        if depth == 1 && toks[j].kind == Kind::Ident {
                            segs.push((&toks[j].text, toks[j].line));
                        }
                    }
                }
                j += 1;
            }
        }
        _ => {}
    }
    for (seg, line) in segs {
        if let Some(target) = cfg.module_order.iter().position(|m| m == seg) {
            if target < own {
                out.push(Finding {
                    rule: "layering".into(),
                    file: file.path.clone(),
                    line,
                    message: format!(
                        "module `{}` must not reach up into `crate::{seg}` \
                         (layer order: {})",
                        cfg.module_order[own],
                        cfg.module_order.join(" > "),
                    ),
                });
            }
        }
    }
}

/// Flag any path that starts with a `[external] forbidden` prefix.
fn check_forbidden(
    toks: &[&Tok],
    i: usize,
    file: &SourceFile,
    cfg: &Config,
    out: &mut Vec<Finding>,
) {
    // Assemble the `a::b::c` chain starting at i.
    let mut path = toks[i].text.clone();
    let mut j = i + 1;
    while toks.get(j).is_some_and(|t| t.text == "::")
        && toks.get(j + 1).is_some_and(|t| t.kind == Kind::Ident)
    {
        path.push_str("::");
        path.push_str(&toks[j + 1].text);
        j += 2;
    }
    for forbidden in &cfg.forbidden_paths {
        if path == *forbidden || path.starts_with(&format!("{forbidden}::")) {
            out.push(Finding {
                rule: "layering".into(),
                file: file.path.clone(),
                line: toks[i].line,
                message: format!(
                    "path `{path}` reaches into vendor-stub internals (`{forbidden}` is forbidden)"
                ),
            });
        }
    }
}
