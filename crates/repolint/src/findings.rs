//! Findings, pragma suppression and report rendering.

use crate::jsonmini::escape;
use crate::pragma::Pragma;
use std::fmt;

/// Every rule the engine can emit, with a one-line description. The
/// pragma parser validates `allow(...)` names against this list.
pub const RULES: &[(&str, &str)] = &[
    (
        "layering",
        "crate and module dependencies must follow the repolint.toml layer graph",
    ),
    (
        "panic",
        "no unwrap/expect/panic!/assert!/unchecked indexing in hardened modules",
    ),
    (
        "cap-alloc",
        "allocations sized from decoded integers must be dominated by a MAX_* cap check",
    ),
    (
        "error-style",
        "error messages are single-line and start lowercase (the one-line stderr contract)",
    ),
    (
        "drift",
        "cross-artifact consistency: bench ids, documented scenario axes, paired cap constants",
    ),
    (
        "config",
        "repolint.toml must describe the tree that actually exists",
    ),
    (
        "pragma",
        "repolint pragmas must parse, carry a reason, and suppress something",
    ),
];

/// Is `rule` a name the engine knows?
pub fn known_rule(rule: &str) -> bool {
    RULES.iter().any(|(r, _)| *r == rule)
}

/// One finding, anchored to a file and line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Rule name from [`RULES`].
    pub rule: String,
    /// Repo-relative path, `/`-separated.
    pub file: String,
    /// 1-based line (0 for whole-file/whole-config findings).
    pub line: u32,
    /// One-line description of the violation.
    pub message: String,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.line > 0 {
            write!(
                f,
                "{}:{}: [{}] {}",
                self.file, self.line, self.rule, self.message
            )
        } else {
            write!(f, "{}: [{}] {}", self.file, self.rule, self.message)
        }
    }
}

/// The outcome of a full pass.
#[derive(Debug, Default)]
pub struct Report {
    /// Unsuppressed findings — any of these means exit 1.
    pub findings: Vec<Finding>,
    /// Findings suppressed by a pragma (visible in `--json`, never fatal).
    pub suppressed: Vec<(Finding, String)>,
    /// Non-fatal notes (unused pragmas); promoted to findings by `--deny`.
    pub warnings: Vec<Finding>,
    /// Files scanned (for the summary line).
    pub files_scanned: usize,
}

impl Report {
    /// Apply pragma suppression: a finding is suppressed when a pragma
    /// naming its rule sits on the same line or the line directly above
    /// (in the same file). Returns the pragmas that suppressed nothing.
    pub fn apply_pragmas(&mut self, file: &str, pragmas: &[Pragma]) -> Vec<Pragma> {
        let mut used = vec![false; pragmas.len()];
        let mut kept = Vec::new();
        for finding in std::mem::take(&mut self.findings) {
            let hit = (finding.file == file).then(|| {
                pragmas.iter().position(|p| {
                    (p.line == finding.line || p.line + 1 == finding.line)
                        && p.rules.iter().any(|r| r == &finding.rule)
                })
            });
            match hit.flatten() {
                Some(idx) => {
                    used[idx] = true;
                    self.suppressed.push((finding, pragmas[idx].reason.clone()));
                }
                None => kept.push(finding),
            }
        }
        self.findings = kept;
        pragmas
            .iter()
            .zip(&used)
            .filter(|(_, u)| !**u)
            .map(|(p, _)| p.clone())
            .collect()
    }

    /// Stable output order: file, then line, then rule. Collapses exact
    /// duplicates — one literal can sit in two overlapping contexts
    /// (`Err(SpecError::parse("…"))`) and must still report once.
    pub fn sort(&mut self) {
        let key = |f: &Finding| (f.file.clone(), f.line, f.rule.clone());
        self.findings.sort_by_key(key);
        self.findings.dedup();
        self.warnings.sort_by_key(key);
        self.warnings.dedup();
        self.suppressed
            .sort_by_key(|(f, _)| (f.file.clone(), f.line));
    }

    /// Render the machine-readable report.
    pub fn to_json(&self) -> String {
        let one = |f: &Finding| {
            format!(
                r#"{{"rule":"{}","file":"{}","line":{},"message":"{}"}}"#,
                escape(&f.rule),
                escape(&f.file),
                f.line,
                escape(&f.message)
            )
        };
        let list = |fs: &[Finding]| fs.iter().map(one).collect::<Vec<_>>().join(",");
        let suppressed = self
            .suppressed
            .iter()
            .map(|(f, reason)| {
                let mut s = one(f);
                s.truncate(s.len() - 1);
                format!(r#"{s},"allowed":"{}"}}"#, escape(reason))
            })
            .collect::<Vec<_>>()
            .join(",");
        format!(
            r#"{{"files_scanned":{},"findings":[{}],"warnings":[{}],"suppressed":[{}]}}"#,
            self.files_scanned,
            list(&self.findings),
            list(&self.warnings),
            suppressed
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn finding(rule: &str, file: &str, line: u32) -> Finding {
        Finding {
            rule: rule.into(),
            file: file.into(),
            line,
            message: "m".into(),
        }
    }

    #[test]
    fn pragma_suppression_is_line_adjacent_and_rule_scoped() {
        let mut report = Report {
            findings: vec![
                finding("panic", "a.rs", 10),     // pragma on 9: suppressed
                finding("panic", "a.rs", 12),     // too far: kept
                finding("cap-alloc", "a.rs", 10), // wrong rule: kept
            ],
            ..Default::default()
        };
        let pragmas = vec![Pragma {
            rules: vec!["panic".into()],
            reason: "why".into(),
            line: 9,
        }];
        let unused = report.apply_pragmas("a.rs", &pragmas);
        assert!(unused.is_empty());
        assert_eq!(report.findings.len(), 2);
        assert_eq!(report.suppressed.len(), 1);
        assert_eq!(report.suppressed[0].1, "why");
    }

    #[test]
    fn unused_pragmas_are_returned() {
        let mut report = Report::default();
        let pragmas = vec![Pragma {
            rules: vec!["panic".into()],
            reason: "stale".into(),
            line: 3,
        }];
        let unused = report.apply_pragmas("a.rs", &pragmas);
        assert_eq!(unused.len(), 1);
    }

    #[test]
    fn json_is_parseable() {
        let mut report = Report::default();
        report.findings.push(finding("drift", "BENCH_0.json", 0));
        report.files_scanned = 3;
        let parsed = crate::jsonmini::Json::parse(&report.to_json()).unwrap();
        assert_eq!(parsed.get("findings").unwrap().items().len(), 1);
    }
}
