//! The `repolint` binary. Exit status: 0 clean, 1 findings, 2 the tool
//! itself could not run (bad config, unreadable tree).

use repolint::config::Config;
use repolint::findings::RULES;
use repolint::workspace::Workspace;
use repolint::Options;
use std::path::PathBuf;
use std::process::ExitCode;

const USAGE: &str = "\
usage: repolint [--root DIR] [--config FILE] [--deny] [--json FILE] [--list-rules]

  --root DIR     workspace root (default: nearest ancestor with repolint.toml)
  --deny         promote warnings (unused pragmas) to findings — the CI gate
  --json FILE    also write the machine-readable report to FILE
  --config FILE  config path (default: <root>/repolint.toml)
  --list-rules   print the rule catalog and exit";

fn main() -> ExitCode {
    match run(std::env::args().skip(1).collect()) {
        Ok(clean) => {
            if clean {
                ExitCode::SUCCESS
            } else {
                ExitCode::from(1)
            }
        }
        Err(e) => {
            eprintln!("repolint: {e}");
            ExitCode::from(2)
        }
    }
}

fn run(args: Vec<String>) -> Result<bool, String> {
    let mut root: Option<PathBuf> = None;
    let mut config: Option<PathBuf> = None;
    let mut json_out: Option<PathBuf> = None;
    let mut opts = Options::default();

    let mut it = args.into_iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--root" => root = Some(next_path(&mut it, "--root")?),
            "--config" => config = Some(next_path(&mut it, "--config")?),
            "--json" => json_out = Some(next_path(&mut it, "--json")?),
            "--deny" => opts.deny = true,
            "--list-rules" => {
                for (name, desc) in RULES {
                    println!("{name:<12} {desc}");
                }
                return Ok(true);
            }
            "--help" | "-h" => {
                println!("{USAGE}");
                return Ok(true);
            }
            other => return Err(format!("unknown argument `{other}`\n{USAGE}")),
        }
    }

    let root = match root {
        Some(r) => r,
        None => find_root()?,
    };
    let config_path = config.unwrap_or_else(|| root.join("repolint.toml"));
    let text = std::fs::read_to_string(&config_path)
        .map_err(|e| format!("{}: {e}", config_path.display()))?;
    let cfg = Config::parse(&text)?;
    let ws = Workspace::load(&root)?;
    let report = repolint::run(&ws, &cfg, opts);

    if let Some(path) = json_out {
        std::fs::write(&path, report.to_json()).map_err(|e| format!("{}: {e}", path.display()))?;
    }

    for f in &report.findings {
        println!("{f}");
    }
    for w in &report.warnings {
        println!("warning: {w}");
    }
    println!(
        "repolint: {} files, {} finding(s), {} warning(s), {} allowed",
        report.files_scanned,
        report.findings.len(),
        report.warnings.len(),
        report.suppressed.len()
    );
    Ok(report.findings.is_empty())
}

fn next_path(it: &mut impl Iterator<Item = String>, flag: &str) -> Result<PathBuf, String> {
    it.next()
        .map(PathBuf::from)
        .ok_or_else(|| format!("{flag} needs a value\n{USAGE}"))
}

/// Walk up from the current directory to the nearest repolint.toml.
fn find_root() -> Result<PathBuf, String> {
    let mut dir = std::env::current_dir().map_err(|e| format!("cwd: {e}"))?;
    loop {
        if dir.join("repolint.toml").is_file() {
            return Ok(dir);
        }
        if !dir.pop() {
            return Err("no repolint.toml found here or in any ancestor (pass --root)".to_string());
        }
    }
}
