//! Experiment-fleet helpers: a scoped-thread parallel map and a shared
//! cache of isolation IPCs.
//!
//! Every figure needs dozens-to-hundreds of independent simulations; the
//! runner fans them out across hardware threads with crossbeam scoped
//! threads (no `'static` bound on the work items) and memoises the
//! expensive isolation runs every relative metric divides by.

use crate::config::MachineConfig;
use crate::system::System;
use cachesim::PolicyKind;
use parking_lot::Mutex;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

/// Parallel map over `items`, preserving order. Work is distributed by an
/// atomic cursor so uneven item costs (8-thread runs take 4x the work of
/// 2-thread runs) still balance.
pub fn parallel_map<T, R, F>(items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    let threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4)
        .min(items.len().max(1));
    let cursor = AtomicUsize::new(0);
    let results: Vec<Mutex<Option<R>>> = (0..items.len()).map(|_| Mutex::new(None)).collect();

    crossbeam::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|_| loop {
                let i = cursor.fetch_add(1, Ordering::Relaxed);
                if i >= items.len() {
                    break;
                }
                let r = f(&items[i]);
                *results[i].lock() = Some(r);
            });
        }
    })
    .expect("worker panicked");

    results
        .into_iter()
        .map(|m| m.into_inner().expect("every item processed"))
        .collect()
}

/// Key of one isolation run: the benchmark, the L2 policy, the seed salt
/// and the whole solo machine (geometries, latencies, instruction target,
/// seed) — every input that changes the resulting IPC. The full config
/// matters because one `IsolationCache` may now be shared across engines
/// built from different machines, and the salt matters because seed sweeps
/// perturb the generated trace: without it a salted engine would divide by
/// another salt's memoised isolation IPC.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
struct IsoKey {
    benchmark: String,
    policy: PolicyKind,
    seed_salt: u64,
    solo_cfg: MachineConfig,
}

/// Hit/miss counters of an [`IsolationCache`]: how often a requested
/// isolation IPC was already memoised (`hits`) versus simulated from
/// scratch (`misses`). `entries` is the current memo size. The sweep
/// service surfaces these in its status response so a warm daemon can
/// *prove* it skipped the solo runs of a repeated job.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct MemoStats {
    /// Memoised (benchmark, policy, salt, solo machine) points.
    pub entries: u64,
    /// Lookups answered from the memo.
    pub hits: u64,
    /// Lookups that had to simulate a solo run.
    pub misses: u64,
}

/// Thread-safe memo of isolation IPCs (`IPC_isolation_i` in the metric
/// definitions): each benchmark running alone with the full L2 under a
/// given replacement policy.
///
/// The memo key is every input that changes the solo run's IPC — the
/// benchmark, the L2 replacement policy, the trace seed salt, and the
/// whole single-core machine derived from the caller's config
/// (geometries, latencies, instruction target, base seed). The caller's
/// *core count* is deliberately not part of the key: the solo machine is
/// always single-core, so engines of different widths share entries.
///
/// Because the key is complete, a memoised value may be reused across
/// *any* consumer that agrees on it — other engines, other sweeps, and
/// (in the sweep service) other jobs for the whole daemon lifetime. The
/// reuse guarantee is exact, not approximate: simulation is
/// deterministic, so the memoised IPC is bit-identical to what a fresh
/// solo run would produce. [`MemoStats`] counts how often each path was
/// taken:
///
/// ```
/// use cmpsim::{IsolationCache, MachineConfig};
/// use cachesim::PolicyKind;
///
/// let mut cfg = MachineConfig::paper_baseline(2);
/// cfg.insts_target = 20_000; // keep the doctest quick
/// let memo = IsolationCache::new();
/// let first = memo.isolation_ipc(&cfg, "gzip", PolicyKind::Lru, 0);
/// let again = memo.isolation_ipc(&cfg, "gzip", PolicyKind::Lru, 0);
/// assert_eq!(first, again, "memoised value is the exact solo IPC");
/// let stats = memo.stats();
/// assert_eq!((stats.misses, stats.hits, stats.entries), (1, 1, 1));
/// ```
#[derive(Debug, Default)]
pub struct IsolationCache {
    map: Mutex<HashMap<IsoKey, f64>>,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl IsolationCache {
    /// Empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// IPC of `benchmark` running alone on a single-core machine derived
    /// from `cfg` (same caches, same latencies, full L2, no partitioning).
    ///
    /// `seed_salt` must match the salt of the shared run the caller
    /// divides by: it perturbs the generated trace, so the solo run is
    /// simulated — and memoised — under the same salt.
    pub fn isolation_ipc(
        &self,
        cfg: &MachineConfig,
        benchmark: &str,
        policy: PolicyKind,
        seed_salt: u64,
    ) -> f64 {
        let mut solo = cfg.clone();
        solo.num_cores = 1;
        let key = IsoKey {
            benchmark: benchmark.to_string(),
            policy,
            seed_salt,
            solo_cfg: solo,
        };
        if let Some(&ipc) = self.map.lock().get(&key) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return ipc;
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        let profile = tracegen::benchmark(benchmark)
            .unwrap_or_else(|| panic!("unknown benchmark {benchmark}"));
        let mut sys = System::from_profiles(&key.solo_cfg, &[profile], policy, None, seed_salt);
        let ipc = sys.run().ipc(0);
        self.map.lock().insert(key, ipc);
        ipc
    }

    /// Isolation IPCs for every benchmark of a workload, in thread order.
    pub fn isolation_ipcs(
        &self,
        cfg: &MachineConfig,
        benchmarks: &[String],
        policy: PolicyKind,
        seed_salt: u64,
    ) -> Vec<f64> {
        benchmarks
            .iter()
            .map(|b| self.isolation_ipc(cfg, b, policy, seed_salt))
            .collect()
    }

    /// Number of memoised entries.
    pub fn len(&self) -> usize {
        self.map.lock().len()
    }

    /// Snapshot of the memo's hit/miss counters (see [`MemoStats`]).
    ///
    /// Counters are monotonic over the cache's lifetime; consumers that
    /// want a per-interval view (the sweep service's per-job deltas)
    /// subtract two snapshots. Two racing lookups of one uncached key may
    /// both count as misses — the counters describe work performed, not
    /// distinct keys.
    pub fn stats(&self) -> MemoStats {
        MemoStats {
            entries: self.len() as u64,
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
        }
    }

    /// Is the cache empty?
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parallel_map_preserves_order() {
        let items: Vec<u64> = (0..100).collect();
        let out = parallel_map(&items, |&x| x * x);
        for (i, &r) in out.iter().enumerate() {
            assert_eq!(r, (i * i) as u64);
        }
    }

    #[test]
    fn parallel_map_handles_empty_input() {
        let items: Vec<u64> = vec![];
        let out: Vec<u64> = parallel_map(&items, |&x| x);
        assert!(out.is_empty());
    }

    #[test]
    fn parallel_map_with_uneven_costs() {
        let items: Vec<u64> = (0..32).collect();
        let out = parallel_map(&items, |&x| {
            // Simulate uneven work.
            let mut acc = 0u64;
            for i in 0..(x * 1000) {
                acc = acc.wrapping_add(i);
            }
            acc.wrapping_add(x)
        });
        assert_eq!(out.len(), 32);
    }

    #[test]
    fn isolation_cache_memoises() {
        let mut cfg = MachineConfig::paper_baseline(1);
        cfg.insts_target = 30_000;
        let cache = IsolationCache::new();
        let a = cache.isolation_ipc(&cfg, "gzip", PolicyKind::Lru, 0);
        assert_eq!(cache.len(), 1);
        let b = cache.isolation_ipc(&cfg, "gzip", PolicyKind::Lru, 0);
        assert_eq!(a, b);
        assert_eq!(cache.len(), 1, "second call was memoised");
    }

    #[test]
    fn memo_stats_count_hits_and_misses() {
        let mut cfg = MachineConfig::paper_baseline(1);
        cfg.insts_target = 20_000;
        let cache = IsolationCache::new();
        assert_eq!(cache.stats(), MemoStats::default());
        cache.isolation_ipc(&cfg, "gzip", PolicyKind::Lru, 0);
        cache.isolation_ipc(&cfg, "gzip", PolicyKind::Lru, 0);
        cache.isolation_ipc(&cfg, "eon", PolicyKind::Lru, 0);
        let s = cache.stats();
        assert_eq!((s.entries, s.hits, s.misses), (2, 1, 2));
    }

    #[test]
    fn isolation_distinguishes_policies_and_sizes() {
        let mut cfg = MachineConfig::paper_baseline(1);
        cfg.insts_target = 30_000;
        let cache = IsolationCache::new();
        cache.isolation_ipc(&cfg, "gzip", PolicyKind::Lru, 0);
        cache.isolation_ipc(&cfg, "gzip", PolicyKind::Nru, 0);
        let small = cfg.with_l2_size(512 * 1024).unwrap();
        cache.isolation_ipc(&small, "gzip", PolicyKind::Lru, 0);
        assert_eq!(cache.len(), 3);
    }

    #[test]
    fn isolation_distinguishes_full_machines() {
        // A shared cache may see engines built from different machines:
        // anything that changes the solo run must miss the memo.
        let mut cfg = MachineConfig::paper_baseline(1);
        cfg.insts_target = 30_000;
        let cache = IsolationCache::new();
        cache.isolation_ipc(&cfg, "gzip", PolicyKind::Lru, 0);

        let mut reseeded = cfg.clone();
        reseeded.seed ^= 0xDEAD_BEEF;
        cache.isolation_ipc(&reseeded, "gzip", PolicyKind::Lru, 0);

        let mut slower = cfg.clone();
        slower.latencies.l2_miss += 100;
        cache.isolation_ipc(&slower, "gzip", PolicyKind::Lru, 0);
        assert_eq!(cache.len(), 3, "seed and latency changes must not collide");

        // The caller's core count is irrelevant: the solo machine is
        // always single-core, so this must hit.
        let mut multi = cfg.clone();
        multi.num_cores = 4;
        cache.isolation_ipc(&multi, "gzip", PolicyKind::Lru, 0);
        assert_eq!(cache.len(), 3, "core count must not fragment the memo");
    }

    #[test]
    fn isolation_distinguishes_seed_salts() {
        // Regression for the seed-sweep aliasing bug: the memo used to be
        // keyed without the salt, so a sweep over seed salts read one
        // salt's isolation IPC for every other salt.
        let mut cfg = MachineConfig::paper_baseline(1);
        cfg.insts_target = 30_000;
        let cache = IsolationCache::new();
        let base = cache.isolation_ipc(&cfg, "gzip", PolicyKind::Lru, 0);
        let salted = cache.isolation_ipc(&cfg, "gzip", PolicyKind::Lru, 1);
        assert_eq!(cache.len(), 2, "different salts must not alias");
        assert_ne!(
            base, salted,
            "salting perturbs the trace, so the solo IPC moves too"
        );
        // Same salt still hits the memo.
        cache.isolation_ipc(&cfg, "gzip", PolicyKind::Lru, 1);
        assert_eq!(cache.len(), 2);
    }

    #[test]
    fn isolation_ipcs_vector_matches_singles() {
        let mut cfg = MachineConfig::paper_baseline(1);
        cfg.insts_target = 20_000;
        let cache = IsolationCache::new();
        let names = vec!["gzip".to_string(), "eon".to_string()];
        let v = cache.isolation_ipcs(&cfg, &names, PolicyKind::Lru, 0);
        assert_eq!(v.len(), 2);
        assert_eq!(v[0], cache.isolation_ipc(&cfg, "gzip", PolicyKind::Lru, 0));
    }
}
