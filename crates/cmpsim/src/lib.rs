//! # cmpsim — trace-driven CMP timing simulator
//!
//! A stand-in for the paper's Turandot/PTCMP simulator. Each core consumes
//! its benchmark's synthetic trace; timing charges a per-benchmark base CPI
//! for non-memory work plus blocking miss penalties from Table II
//! (11 cycles to L2, +250 cycles to memory). Cores advance in
//! smallest-local-clock-first order, so their L2 accesses interleave in
//! simulated-time order and contend realistically for the shared,
//! optionally partitioned L2.
//!
//! The dynamic CPA controller from `plru-core` hooks in at two points:
//! every L2 access is reported to the owning thread's profiler, and at
//! every interval boundary the controller repartitions the L2.
//!
//! ## Example
//!
//! ```
//! use cmpsim::{MachineConfig, System};
//! use plru_core::Scheme;
//! use tracegen::workload;
//!
//! let mut cfg = MachineConfig::paper_baseline(2);
//! cfg.insts_target = 50_000; // keep the doctest fast
//! let wl = workload("2T_21").unwrap();
//! let scheme: Scheme = "L".parse().unwrap();
//! let mut sys = System::from_workload_scheme(&cfg, &wl, &scheme, 1);
//! let result = sys.run();
//! assert!(result.ipc(0) > 0.0);
//! ```

pub mod config;
pub mod core_model;
pub mod metrics;
pub mod runner;
pub mod system;

pub use config::{Latencies, MachineConfig};
pub use core_model::CoreModel;
pub use metrics::{harmonic_mean_of_relative_ipc, throughput, weighted_speedup, WorkloadMetrics};
pub use runner::{parallel_map, IsolationCache, MemoStats};
pub use system::{SimResult, System};
