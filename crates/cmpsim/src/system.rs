//! The full CMP system: cores + hierarchy + optional dynamic CPA.

use crate::config::MachineConfig;
use crate::core_model::CoreModel;
use cachesim::hierarchy::{BatchScratch, Hierarchy, MemLevel};
use cachesim::{CacheStats, PolicyKind};
use plru_core::{CpaConfig, CpaController, Scheme};
use serde::{Deserialize, Serialize};
use std::path::Path;
use tracegen::trace::{self, TraceError};
use tracegen::{BenchmarkProfile, TraceGenerator, TraceSource, Workload};

/// Per-core outcome of a simulation.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CoreResult {
    /// Committed-instruction target the IPC is measured over.
    pub insts: u64,
    /// Local cycle count when the target was reached.
    pub cycles: u64,
    /// Instructions per cycle at the freeze point.
    pub ipc: f64,
    /// This core's L2 accesses at its freeze point.
    pub l2_accesses: u64,
    /// This core's L2 misses at its freeze point.
    pub l2_misses: u64,
    /// L1D misses at the freeze point.
    pub l1d_misses: u64,
    /// L1I misses at the freeze point.
    pub l1i_misses: u64,
}

/// Outcome of one full simulation run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SimResult {
    /// Per-core results in core order.
    pub cores: Vec<CoreResult>,
    /// Wall-clock of the run: the last core's freeze cycle.
    pub total_cycles: u64,
    /// Repartition intervals executed (0 without a CPA).
    pub intervals: u64,
    /// Total ATD probes across threads (0 without a CPA).
    pub atd_observed: u64,
    /// Final ways-per-thread allocation (empty without a CPA).
    pub final_allocation: Vec<usize>,
    /// Full-run shared-L2 statistics (keeps accumulating after freezes;
    /// per-core freeze-point numbers are in `cores`).
    pub l2_stats: CacheStats,
}

impl SimResult {
    /// IPC of one core.
    pub fn ipc(&self, core: usize) -> f64 {
        self.cores[core].ipc
    }

    /// All IPCs in core order.
    pub fn ipcs(&self) -> Vec<f64> {
        self.cores.iter().map(|c| c.ipc).collect()
    }
}

/// Reconcile the legacy `(l2_policy, Option<CpaConfig>)` pair into a
/// [`Scheme`], enforcing the invariants `Scheme` carries by construction.
///
/// # Panics
/// If the CPA's profiling policy differs from the L2 policy (the paper
/// never mixes them) or the combination is not registry-valid.
fn pair_scheme(l2_policy: PolicyKind, cpa: Option<CpaConfig>) -> Scheme {
    match cpa {
        Some(c) => {
            assert_eq!(
                c.policy, l2_policy,
                "the paper always pairs the profiling policy with the L2 policy"
            );
            Scheme::partitioned(c).expect("CPA configuration must be registry-valid")
        }
        None => Scheme::bare(l2_policy),
    }
}

/// A runnable CMP system.
pub struct System {
    cfg: MachineConfig,
    hierarchy: Hierarchy,
    cores: Vec<CoreModel>,
    controller: Option<CpaController>,
    next_interval: u64,
    intervals: u64,
    /// Per-core L2 miss counts at the previous interval boundary (the
    /// controller's adaptive-scale feedback).
    last_misses: Vec<u64>,
    /// Reusable instruction-fetch address buffer (one record's fetch group).
    fetch_buf: Vec<u64>,
    /// Reusable buffers for the batched L1I → L2 fetch path.
    scratch: BatchScratch,
}

impl System {
    /// Trace seed of one core's live generator: the configuration's
    /// per-core seed perturbed by the salt. One definition shared by the
    /// live path and trace capture, so a recorded run replays the very
    /// stream a live run would synthesize.
    pub fn thread_seed(cfg: &MachineConfig, core: usize, seed_salt: u64) -> u64 {
        cfg.trace_seed(core) ^ seed_salt.rotate_left(core as u32)
    }

    /// Build a system running one benchmark per core from live trace
    /// generators, under a [`Scheme`] (bare policy or policy + CPA).
    ///
    /// `seed_salt` perturbs the per-core trace seeds so repeated instances
    /// of the same benchmark (e.g. facerec twice in `8T_04`) diverge.
    pub fn from_profiles_scheme(
        cfg: &MachineConfig,
        profiles: &[BenchmarkProfile],
        scheme: &Scheme,
        seed_salt: u64,
    ) -> Self {
        let sources: Vec<Box<dyn TraceSource>> = profiles
            .iter()
            .enumerate()
            .map(|(i, p)| {
                Box::new(TraceGenerator::new(
                    p.clone(),
                    Self::thread_seed(cfg, i, seed_salt),
                )) as Box<dyn TraceSource>
            })
            .collect();
        Self::from_sources_scheme(cfg, profiles, sources, scheme, seed_salt)
    }

    /// Policy-and-CPA-pair variant of [`System::from_profiles_scheme`] —
    /// the pre-`Scheme` calling convention.
    pub fn from_profiles(
        cfg: &MachineConfig,
        profiles: &[BenchmarkProfile],
        l2_policy: PolicyKind,
        cpa: Option<CpaConfig>,
        seed_salt: u64,
    ) -> Self {
        Self::from_profiles_scheme(cfg, profiles, &pair_scheme(l2_policy, cpa), seed_salt)
    }

    /// Build a system over explicit per-core [`TraceSource`]s — the
    /// extension point behind live synthesis, trace capture and trace
    /// replay. `profiles` supply only the per-core timing model; the
    /// memory-access streams come from `sources`.
    ///
    /// The [`Scheme`] carries the whole replacement/partitioning
    /// configuration; its construction already guaranteed that the CPA's
    /// profiling policy matches the L2 policy and that the policy supports
    /// the enforcement style.
    pub fn from_sources_scheme(
        cfg: &MachineConfig,
        profiles: &[BenchmarkProfile],
        sources: Vec<Box<dyn TraceSource>>,
        scheme: &Scheme,
        seed_salt: u64,
    ) -> Self {
        assert_eq!(profiles.len(), cfg.num_cores, "one benchmark per core");
        assert_eq!(sources.len(), cfg.num_cores, "one trace source per core");
        let mut hierarchy = Hierarchy::new(
            cfg.num_cores,
            cfg.l1i,
            cfg.l1d,
            cfg.l2,
            scheme.policy(),
            cfg.seed ^ seed_salt,
        );
        let controller = scheme.cpa().map(|c| {
            let ctl = CpaController::new(c.clone(), cfg.l2, cfg.num_cores);
            hierarchy.l2.set_enforcement(ctl.initial_enforcement());
            ctl
        });
        let cores = profiles
            .iter()
            .zip(sources)
            .enumerate()
            .map(|(i, (p, source))| CoreModel::from_source(i, p, source, cfg.insts_per_fetch_line))
            .collect();
        let next_interval = controller
            .as_ref()
            .map(|c| c.interval_cycles())
            .unwrap_or(u64::MAX);
        System {
            last_misses: vec![0; cfg.num_cores],
            cfg: cfg.clone(),
            hierarchy,
            cores,
            controller,
            next_interval,
            intervals: 0,
            fetch_buf: Vec::new(),
            scratch: BatchScratch::new(),
        }
    }

    /// Policy-and-CPA-pair variant of [`System::from_sources_scheme`] —
    /// the pre-`Scheme` calling convention.
    pub fn from_sources(
        cfg: &MachineConfig,
        profiles: &[BenchmarkProfile],
        sources: Vec<Box<dyn TraceSource>>,
        l2_policy: PolicyKind,
        cpa: Option<CpaConfig>,
        seed_salt: u64,
    ) -> Self {
        Self::from_sources_scheme(
            cfg,
            profiles,
            sources,
            &pair_scheme(l2_policy, cpa),
            seed_salt,
        )
    }

    /// Build from a Table II workload under a [`Scheme`].
    pub fn from_workload_scheme(
        cfg: &MachineConfig,
        workload: &Workload,
        scheme: &Scheme,
        seed_salt: u64,
    ) -> Self {
        Self::from_profiles_scheme(cfg, &workload.profiles(), scheme, seed_salt)
    }

    /// Build a system replaying a recorded trace container (see
    /// [`tracegen::trace`]) under a [`Scheme`]: per-core streams come from
    /// the file, the timing model from the profiles named in its metadata.
    ///
    /// Errors if the file is unreadable or malformed, if its thread count
    /// differs from `cfg.num_cores`, or if a recorded benchmark name no
    /// longer resolves. The caller is responsible for checking that the
    /// replay's instruction target does not exceed the recorded one
    /// ([`tracegen::trace::TraceMeta::insts`]) — an exhausted stream
    /// panics mid-run.
    pub fn from_trace_scheme(
        cfg: &MachineConfig,
        path: impl AsRef<Path>,
        scheme: &Scheme,
        seed_salt: u64,
    ) -> Result<Self, TraceError> {
        Self::from_trace_scheme_with(
            cfg,
            path,
            scheme,
            seed_salt,
            &trace::DecodeOptions::default(),
        )
    }

    /// [`System::from_trace_scheme`] with explicit
    /// [`DecodeOptions`](tracegen::trace::DecodeOptions): a non-zero
    /// worker count decodes trace chunks ahead of consumption on a
    /// shared pool. The replayed streams are identical at any worker
    /// count — the knob only changes where the decode work runs.
    pub fn from_trace_scheme_with(
        cfg: &MachineConfig,
        path: impl AsRef<Path>,
        scheme: &Scheme,
        seed_salt: u64,
        decode: &trace::DecodeOptions,
    ) -> Result<Self, TraceError> {
        let path = path.as_ref();
        let (info, sources) = trace::open_sources_with(path, decode)?;
        if info.meta.threads() != cfg.num_cores {
            return Err(TraceError::Format(format!(
                "trace {} records {} threads, but the machine has {} cores",
                path.display(),
                info.meta.threads(),
                cfg.num_cores
            )));
        }
        let profiles: Vec<BenchmarkProfile> = info
            .meta
            .benchmarks
            .iter()
            .map(|b| {
                tracegen::benchmark(b).ok_or_else(|| {
                    TraceError::Format(format!(
                        "trace {} names unknown benchmark `{b}`",
                        path.display()
                    ))
                })
            })
            .collect::<Result<_, _>>()?;
        Ok(Self::from_sources_scheme(
            cfg, &profiles, sources, scheme, seed_salt,
        ))
    }

    /// Policy-and-CPA-pair variant of [`System::from_trace_scheme`] — the
    /// pre-`Scheme` calling convention.
    pub fn from_trace(
        cfg: &MachineConfig,
        path: impl AsRef<Path>,
        l2_policy: PolicyKind,
        cpa: Option<CpaConfig>,
        seed_salt: u64,
    ) -> Result<Self, TraceError> {
        Self::from_trace_scheme(cfg, path, &pair_scheme(l2_policy, cpa), seed_salt)
    }

    fn penalty(&self, level: MemLevel) -> u64 {
        match level {
            MemLevel::L1 => 0,
            MemLevel::L2 => self.cfg.latencies.l1_miss,
            MemLevel::Memory => self.cfg.latencies.l1_miss + self.cfg.latencies.l2_miss,
        }
    }

    /// Run to completion: every core commits `insts_target` instructions;
    /// finished cores keep executing (keeping contention realistic) until
    /// the last core freezes.
    pub fn run(&mut self) -> SimResult {
        let target = self.cfg.insts_target;
        let n = self.cores.len();
        let mut frozen: Vec<Option<CoreResult>> = vec![None; n];
        let mut done = 0usize;

        while done < n {
            // Advance the core with the smallest local clock: simulated
            // time order, so L2 interleaving is realistic.
            let c = (0..n)
                .min_by_key(|&i| self.cores[i].cycle)
                .expect("at least one core");
            let now = self.cores[c].cycle;

            // Interval boundary?
            if now >= self.next_interval {
                if let Some(ctl) = &mut self.controller {
                    let misses: Vec<u64> = (0..n)
                        .map(|i| {
                            let total = self.hierarchy.l2.stats().core(i).misses;
                            let delta = total - self.last_misses[i];
                            self.last_misses[i] = total;
                            delta
                        })
                        .collect();
                    let enforcement = ctl.on_interval_with_feedback(Some(&misses));
                    self.hierarchy.l2.set_enforcement(enforcement);
                    self.intervals += 1;
                    self.next_interval += ctl.interval_cycles();
                }
            }

            let rec = self.cores[c].next_record();
            let insts = rec.instructions();
            let mut latency = self.cores[c].charge_base(insts);

            // Instruction fetches: the record's whole fetch group runs
            // through the batched L1I → L2 kernel; per-level counts charge
            // the same summed penalties as the scalar per-access walk.
            self.cores[c].fetch_addrs_into(insts, &mut self.fetch_buf);
            if !self.fetch_buf.is_empty() {
                let levels =
                    self.hierarchy
                        .access_inst_batch(c, &self.fetch_buf, &mut self.scratch);
                latency += levels.l2_accesses() * self.cfg.latencies.l1_miss
                    + levels.memory * self.cfg.latencies.l2_miss;
                if let Some(ctl) = &mut self.controller {
                    // The ATDs observe every fetch that left the L1, in
                    // stream order — exactly as the scalar path did.
                    for a in self.scratch.l2_accesses() {
                        ctl.observe(c, a.addr);
                    }
                }
            }

            // The data access.
            let out = self.hierarchy.access_data(c, rec.addr, rec.is_write);
            latency += self.penalty(out.level);
            if out.level != MemLevel::L1 {
                if let Some(ctl) = &mut self.controller {
                    ctl.observe(c, rec.addr);
                }
            }

            let core = &mut self.cores[c];
            core.cycle += latency;
            core.insts += insts;
            if !core.finished() {
                core.maybe_finish(target);
                if core.finished() {
                    let l2 = self.hierarchy.l2.stats().core(c);
                    frozen[c] = Some(CoreResult {
                        insts: target,
                        cycles: core.finish_cycle.expect("just finished"),
                        ipc: core.ipc(target),
                        l2_accesses: l2.accesses,
                        l2_misses: l2.misses,
                        l1d_misses: self.hierarchy.l1(c).dcache.stats().core(0).misses,
                        l1i_misses: self.hierarchy.l1(c).icache.stats().core(0).misses,
                    });
                    done += 1;
                }
            }
        }

        let cores: Vec<CoreResult> = frozen.into_iter().map(|c| c.expect("all frozen")).collect();
        SimResult {
            total_cycles: cores.iter().map(|c| c.cycles).max().unwrap_or(0),
            intervals: self.intervals,
            atd_observed: self
                .controller
                .as_ref()
                .map(|c| c.total_observed())
                .unwrap_or(0),
            final_allocation: self
                .controller
                .as_ref()
                .map(|c| c.allocation().to_vec())
                .unwrap_or_default(),
            l2_stats: self.hierarchy.l2.stats().clone(),
            cores,
        }
    }

    /// The machine configuration.
    pub fn config(&self) -> &MachineConfig {
        &self.cfg
    }

    /// The CPA controller, if any.
    pub fn controller(&self) -> Option<&CpaController> {
        self.controller.as_ref()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tracegen::workload;

    fn quick_cfg(cores: usize) -> MachineConfig {
        let mut cfg = MachineConfig::paper_baseline(cores);
        cfg.insts_target = 60_000;
        cfg
    }

    #[test]
    fn single_core_run_produces_sane_ipc() {
        let cfg = quick_cfg(1);
        let profiles = vec![tracegen::benchmark("gzip").unwrap()];
        let mut sys = System::from_profiles(&cfg, &profiles, PolicyKind::Lru, None, 1);
        let r = sys.run();
        assert_eq!(r.cores.len(), 1);
        let ipc = r.ipc(0);
        assert!(ipc > 0.05 && ipc < 8.0, "implausible IPC {ipc}");
        assert!(r.cores[0].l2_accesses > 0);
    }

    #[test]
    fn runs_are_deterministic() {
        let cfg = quick_cfg(2);
        let wl = workload("2T_01").unwrap();
        let run = || {
            let mut s = System::from_workload_scheme(&cfg, &wl, &Scheme::bare(PolicyKind::Nru), 7);
            s.run()
        };
        let a = run();
        let b = run();
        assert_eq!(a.ipcs(), b.ipcs());
        assert_eq!(a.total_cycles, b.total_cycles);
    }

    #[test]
    fn memory_bound_thread_is_slower_than_cache_friendly() {
        let cfg = quick_cfg(2);
        let profiles = vec![
            tracegen::benchmark("mcf").unwrap(),
            tracegen::benchmark("crafty").unwrap(),
        ];
        let mut sys = System::from_profiles(&cfg, &profiles, PolicyKind::Lru, None, 3);
        let r = sys.run();
        assert!(
            r.ipc(0) < r.ipc(1),
            "mcf ({}) must be slower than crafty ({})",
            r.ipc(0),
            r.ipc(1)
        );
    }

    #[test]
    fn cpa_controller_repartitions() {
        let mut cfg = quick_cfg(2);
        cfg.insts_target = 150_000;
        let mut cpa = CpaConfig::m_l();
        cpa.interval_cycles = 50_000; // several intervals in a short run
        let wl = workload("2T_02").unwrap(); // mcf + parser
        let scheme = Scheme::partitioned(cpa).unwrap();
        let mut sys = System::from_workload_scheme(&cfg, &wl, &scheme, 5);
        let r = sys.run();
        assert!(
            r.intervals >= 2,
            "expected repartitions, got {}",
            r.intervals
        );
        assert_eq!(r.final_allocation.iter().sum::<usize>(), 16);
        assert!(r.atd_observed > 0, "ATDs must observe sampled accesses");
    }

    #[test]
    #[should_panic]
    fn mismatched_cpa_policy_panics() {
        let cfg = quick_cfg(2);
        let wl = workload("2T_01").unwrap();
        // NRU profiler on an LRU L2 — the paper never mixes them; the
        // legacy pair constructors still reject the combination.
        let _ = System::from_profiles(
            &cfg,
            &wl.profiles(),
            PolicyKind::Lru,
            Some(CpaConfig::m_nru(0.75)),
            1,
        );
    }

    #[test]
    fn eight_core_workload_runs() {
        let mut cfg = quick_cfg(8);
        cfg.insts_target = 20_000;
        let wl = workload("8T_01").unwrap();
        let mut sys = System::from_workload_scheme(&cfg, &wl, &Scheme::bare(PolicyKind::Bt), 2);
        let r = sys.run();
        assert_eq!(r.cores.len(), 8);
        assert!(r.ipcs().iter().all(|&i| i > 0.0));
    }

    #[test]
    fn recorded_trace_replays_bit_identical_to_live() {
        use std::sync::{Arc, Mutex};
        use tracegen::trace::{CapturingSource, TraceMeta, TraceWriter};

        let cfg = quick_cfg(2);
        let wl = workload("2T_02").unwrap(); // mcf + parser
        let salt = 3u64;
        let live =
            System::from_workload_scheme(&cfg, &wl, &Scheme::bare(PolicyKind::Lru), salt).run();

        // Capture: same run, records tee'd into a container.
        let path = std::env::temp_dir().join("plru_system_capture_test.pltc");
        let meta = TraceMeta {
            workload: wl.name.clone(),
            benchmarks: wl.benchmarks.clone(),
            seed: cfg.seed,
            seed_salt: salt,
            insts: cfg.insts_target,
            scheme: Some("L".into()),
        };
        let writer = Arc::new(Mutex::new(
            TraceWriter::create(std::fs::File::create(&path).unwrap(), &meta).unwrap(),
        ));
        let profiles = wl.profiles();
        let sources: Vec<Box<dyn TraceSource>> = profiles
            .iter()
            .enumerate()
            .map(|(i, p)| {
                Box::new(CapturingSource::new(
                    TraceGenerator::new(p.clone(), System::thread_seed(&cfg, i, salt)),
                    i,
                    writer.clone(),
                )) as Box<dyn TraceSource>
            })
            .collect();
        let mut cap = System::from_sources(&cfg, &profiles, sources, PolicyKind::Lru, None, salt);
        let captured = cap.run();
        drop(cap);
        Arc::try_unwrap(writer)
            .expect("capture sources dropped")
            .into_inner()
            .unwrap()
            .finish()
            .unwrap();

        // Replay from the file.
        let replayed = System::from_trace(&cfg, &path, PolicyKind::Lru, None, salt)
            .unwrap()
            .run();
        let _ = std::fs::remove_file(&path);

        let json = |r: &SimResult| serde_json::to_string(r).unwrap();
        assert_eq!(json(&captured), json(&live), "capture must not perturb");
        assert_eq!(json(&replayed), json(&live), "replay must be bit-identical");
    }

    #[test]
    fn trace_with_wrong_core_count_is_rejected() {
        let cfg = quick_cfg(2);
        let wl = workload("2T_01").unwrap();
        // Record a 2-thread trace, then try to replay it on 4 cores.
        let path = std::env::temp_dir().join("plru_system_core_count_test.pltc");
        {
            use std::sync::{Arc, Mutex};
            use tracegen::trace::{CapturingSource, TraceMeta, TraceWriter};
            let meta = TraceMeta {
                workload: wl.name.clone(),
                benchmarks: wl.benchmarks.clone(),
                seed: cfg.seed,
                seed_salt: 0,
                insts: cfg.insts_target,
                scheme: None,
            };
            let writer = Arc::new(Mutex::new(
                TraceWriter::create(std::fs::File::create(&path).unwrap(), &meta).unwrap(),
            ));
            let profiles = wl.profiles();
            let sources: Vec<Box<dyn TraceSource>> = profiles
                .iter()
                .enumerate()
                .map(|(i, p)| {
                    Box::new(CapturingSource::new(
                        TraceGenerator::new(p.clone(), System::thread_seed(&cfg, i, 0)),
                        i,
                        writer.clone(),
                    )) as Box<dyn TraceSource>
                })
                .collect();
            System::from_sources(&cfg, &profiles, sources, PolicyKind::Lru, None, 0).run();
            Arc::try_unwrap(writer)
                .expect("sole owner")
                .into_inner()
                .unwrap()
                .finish()
                .unwrap();
        }
        let wide = quick_cfg(4);
        let err = match System::from_trace(&wide, &path, PolicyKind::Lru, None, 0) {
            Ok(_) => panic!("2-thread trace must not build a 4-core system"),
            Err(e) => e,
        };
        assert!(err.to_string().contains("cores"), "{err}");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn partitioning_protects_the_friendly_thread() {
        // crafty next to streaming swim: with a partitioned L2 crafty's
        // miss count must not exceed its unpartitioned miss count (the
        // stream cannot wash its ways).
        let mut cfg = quick_cfg(2);
        cfg.insts_target = 200_000;
        let profiles = vec![
            tracegen::benchmark("crafty").unwrap(),
            tracegen::benchmark("swim").unwrap(),
        ];
        let mut free = System::from_profiles(&cfg, &profiles, PolicyKind::Lru, None, 9);
        let rf = free.run();
        let mut cpa = CpaConfig::m_l();
        cpa.interval_cycles = 100_000;
        let mut part = System::from_profiles(&cfg, &profiles, PolicyKind::Lru, Some(cpa), 9);
        let rp = part.run();
        let miss_rate = |r: &SimResult| r.cores[0].l2_misses as f64 / r.cores[0].l2_accesses as f64;
        assert!(
            miss_rate(&rp) <= miss_rate(&rf) * 1.1,
            "partitioning must roughly protect crafty: {} vs {}",
            miss_rate(&rp),
            miss_rate(&rf)
        );
    }
}
