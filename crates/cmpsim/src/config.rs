//! Machine configuration (the paper's Table II).

use cachesim::{CacheError, CacheGeometry};
use serde::{Deserialize, Serialize};

/// Memory-access latencies in cycles (Table II).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Latencies {
    /// Extra cycles when an access misses L1 and hits L2
    /// ("11 cycles miss penalty" for both L1s).
    pub l1_miss: u64,
    /// Extra cycles on an L2 miss, on top of the L1 miss penalty
    /// ("250 cycles miss penalty").
    pub l2_miss: u64,
}

impl Default for Latencies {
    fn default() -> Self {
        Latencies {
            l1_miss: 11,
            l2_miss: 250,
        }
    }
}

/// Full machine description.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct MachineConfig {
    /// Number of cores (= threads; the paper runs 1 thread per core).
    pub num_cores: usize,
    /// L1 instruction cache shape (64 KB, 2-way, 128 B).
    pub l1i: CacheGeometry,
    /// L1 data cache shape (32 KB, 2-way, 128 B).
    pub l1d: CacheGeometry,
    /// Shared L2 shape (2 MB, 16-way, 128 B).
    pub l2: CacheGeometry,
    /// Latency parameters.
    pub latencies: Latencies,
    /// Committed instructions per thread before its stats freeze (the
    /// paper uses 100 M; scaled down by default for laptop runtimes).
    pub insts_target: u64,
    /// Instructions per L1I fetch-group access: the 8-wide front end
    /// fetches a 32 B group per cycle, so one 128 B line covers ~32
    /// sequentially-executed instructions.
    pub insts_per_fetch_line: u64,
    /// Base RNG seed; per-core trace seeds derive from it.
    pub seed: u64,
}

impl MachineConfig {
    /// The paper's baseline machine with `num_cores` cores.
    pub fn paper_baseline(num_cores: usize) -> Self {
        MachineConfig {
            num_cores,
            l1i: CacheGeometry::new(64 * 1024, 2, 128).expect("static geometry"),
            l1d: CacheGeometry::new(32 * 1024, 2, 128).expect("static geometry"),
            l2: CacheGeometry::new(2 * 1024 * 1024, 16, 128).expect("static geometry"),
            latencies: Latencies::default(),
            insts_target: 2_000_000,
            insts_per_fetch_line: 32,
            seed: 0xC0FFEE,
        }
    }

    /// Same machine with a different L2 capacity (Figure 8 sweeps 512 KB /
    /// 1 MB / 2 MB at constant 16 ways and 128 B lines).
    pub fn with_l2_size(&self, bytes: u64) -> Result<Self, CacheError> {
        Ok(MachineConfig {
            l2: self.l2.with_size(bytes)?,
            ..self.clone()
        })
    }

    /// Deterministic trace seed for a core.
    pub fn trace_seed(&self, core: usize) -> u64 {
        self.seed
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .wrapping_add((core as u64).wrapping_mul(0x5851_F42D_4C95_7F2D))
            .wrapping_add(1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn baseline_matches_table_ii() {
        let c = MachineConfig::paper_baseline(4);
        assert_eq!(c.l1i.size_bytes(), 64 * 1024);
        assert_eq!(c.l1i.assoc(), 2);
        assert_eq!(c.l1d.size_bytes(), 32 * 1024);
        assert_eq!(c.l2.size_bytes(), 2 * 1024 * 1024);
        assert_eq!(c.l2.assoc(), 16);
        assert_eq!(c.l2.line_bytes(), 128);
        assert_eq!(c.latencies.l1_miss, 11);
        assert_eq!(c.latencies.l2_miss, 250);
    }

    #[test]
    fn l2_resize_keeps_shape() {
        let c = MachineConfig::paper_baseline(2);
        let small = c.with_l2_size(512 * 1024).unwrap();
        assert_eq!(small.l2.assoc(), 16);
        assert_eq!(small.l2.num_sets(), 256);
        assert_eq!(small.l1d, c.l1d);
    }

    #[test]
    fn trace_seeds_differ_per_core() {
        let c = MachineConfig::paper_baseline(8);
        let seeds: std::collections::HashSet<_> = (0..8).map(|k| c.trace_seed(k)).collect();
        assert_eq!(seeds.len(), 8);
    }

    #[test]
    fn serde_round_trip() {
        let c = MachineConfig::paper_baseline(2);
        let s = serde_json::to_string(&c).unwrap();
        assert_eq!(serde_json::from_str::<MachineConfig>(&s).unwrap(), c);
    }
}
