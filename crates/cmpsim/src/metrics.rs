//! The paper's three performance metrics (Section IV):
//!
//! * **IPC throughput**: `sum_i IPC_i`;
//! * **weighted speedup** (Snavely & Tullsen): `sum_i IPC_cmp_i / IPC_iso_i`;
//! * **harmonic mean of relative IPCs** (Luo et al.):
//!   `N / sum_i (IPC_iso_i / IPC_cmp_i)` — the fairness-sensitive metric.

use serde::{Deserialize, Serialize};

/// Sum of IPCs.
pub fn throughput(ipcs: &[f64]) -> f64 {
    ipcs.iter().sum()
}

/// Weighted speedup against isolation IPCs.
pub fn weighted_speedup(cmp: &[f64], iso: &[f64]) -> f64 {
    assert_eq!(cmp.len(), iso.len());
    cmp.iter()
        .zip(iso)
        .map(|(&c, &i)| {
            assert!(i > 0.0, "isolation IPC must be positive");
            c / i
        })
        .sum()
}

/// Harmonic mean of relative IPCs.
pub fn harmonic_mean_of_relative_ipc(cmp: &[f64], iso: &[f64]) -> f64 {
    assert_eq!(cmp.len(), iso.len());
    let denom: f64 = cmp
        .iter()
        .zip(iso)
        .map(|(&c, &i)| {
            assert!(c > 0.0, "CMP IPC must be positive");
            i / c
        })
        .sum();
    cmp.len() as f64 / denom
}

/// The three metrics of one workload under one configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct WorkloadMetrics {
    /// IPC throughput.
    pub throughput: f64,
    /// Weighted speedup.
    pub weighted_speedup: f64,
    /// Harmonic mean of relative IPCs.
    pub harmonic_mean: f64,
}

impl WorkloadMetrics {
    /// Compute all three from CMP and isolation IPC vectors.
    pub fn compute(cmp: &[f64], iso: &[f64]) -> Self {
        WorkloadMetrics {
            throughput: throughput(cmp),
            weighted_speedup: weighted_speedup(cmp, iso),
            harmonic_mean: harmonic_mean_of_relative_ipc(cmp, iso),
        }
    }

    /// Element-wise ratio against a baseline (the "relative to C-L" values
    /// every figure reports).
    pub fn relative_to(&self, base: &WorkloadMetrics) -> WorkloadMetrics {
        WorkloadMetrics {
            throughput: self.throughput / base.throughput,
            weighted_speedup: self.weighted_speedup / base.weighted_speedup,
            harmonic_mean: self.harmonic_mean / base.harmonic_mean,
        }
    }
}

/// Geometric mean of a slice (used to average relative metrics across
/// workloads, as is standard for ratio data).
pub fn geo_mean(xs: &[f64]) -> f64 {
    assert!(!xs.is_empty());
    let log_sum: f64 = xs
        .iter()
        .map(|&x| {
            assert!(x > 0.0);
            x.ln()
        })
        .sum();
    (log_sum / xs.len() as f64).exp()
}

/// Arithmetic mean.
pub fn mean(xs: &[f64]) -> f64 {
    assert!(!xs.is_empty());
    xs.iter().sum::<f64>() / xs.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn throughput_is_the_sum() {
        assert!((throughput(&[1.0, 0.5, 0.25]) - 1.75).abs() < 1e-12);
    }

    #[test]
    fn weighted_speedup_of_isolation_equals_n() {
        let iso = [1.2, 0.7, 2.0];
        assert!((weighted_speedup(&iso, &iso) - 3.0).abs() < 1e-12);
    }

    #[test]
    fn hmean_of_isolation_equals_one() {
        let iso = [1.2, 0.7];
        assert!((harmonic_mean_of_relative_ipc(&iso, &iso) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn hmean_punishes_imbalance_more_than_ws() {
        let iso = [1.0, 1.0];
        let balanced = [0.5, 0.5];
        let skewed = [0.9, 0.1];
        // Same weighted speedup...
        assert!(
            (weighted_speedup(&balanced, &iso) - weighted_speedup(&skewed, &iso)).abs() < 1e-12
        );
        // ...but the harmonic mean prefers the balanced outcome.
        assert!(
            harmonic_mean_of_relative_ipc(&balanced, &iso)
                > harmonic_mean_of_relative_ipc(&skewed, &iso)
        );
    }

    #[test]
    fn metrics_relative_to_self_is_one() {
        let m = WorkloadMetrics::compute(&[0.8, 0.9], &[1.0, 1.1]);
        let r = m.relative_to(&m);
        assert!((r.throughput - 1.0).abs() < 1e-12);
        assert!((r.weighted_speedup - 1.0).abs() < 1e-12);
        assert!((r.harmonic_mean - 1.0).abs() < 1e-12);
    }

    #[test]
    fn geo_mean_of_reciprocals_cancels() {
        let g = geo_mean(&[2.0, 0.5]);
        assert!((g - 1.0).abs() < 1e-12);
    }

    #[test]
    fn mean_basic() {
        assert!((mean(&[1.0, 2.0, 3.0]) - 2.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic]
    fn weighted_speedup_rejects_zero_isolation() {
        let _ = weighted_speedup(&[1.0], &[0.0]);
    }

    #[test]
    #[should_panic]
    fn mismatched_lengths_panic() {
        let _ = weighted_speedup(&[1.0, 2.0], &[1.0]);
    }
}
