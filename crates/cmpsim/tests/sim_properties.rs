//! Property-based tests of the CMP simulator's timing and accounting.

use cachesim::PolicyKind;
use cmpsim::{MachineConfig, System};
use proptest::prelude::*;

fn bench_name() -> impl Strategy<Value = &'static str> {
    prop::sample::select(tracegen::benchmark_names())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Cycles are bounded below by base CPI x instructions and above by
    /// every access paying the full memory penalty.
    #[test]
    fn cycles_are_within_physical_bounds(name in bench_name(), seed in 0u64..1000) {
        let mut cfg = MachineConfig::paper_baseline(1);
        cfg.insts_target = 20_000;
        cfg.seed = seed;
        let profile = tracegen::benchmark(name).unwrap();
        let base_cpi = profile.base_cpi;
        let mut sys = System::from_profiles(&cfg, &[profile], PolicyKind::Lru, None, seed);
        let r = sys.run();
        let cycles = r.cores[0].cycles as f64;
        let insts = cfg.insts_target as f64;
        let min_cycles = insts * base_cpi * 0.95;
        // Upper bound: every instruction is a memory access that misses
        // everywhere, plus instruction fetches.
        let max_cycles = insts * (base_cpi + 2.0 * 261.0);
        prop_assert!(cycles >= min_cycles, "{name}: {cycles} < {min_cycles}");
        prop_assert!(cycles <= max_cycles, "{name}: {cycles} > {max_cycles}");
    }

    /// L2 accesses never exceed L1 accesses; misses never exceed accesses.
    #[test]
    fn access_funnel_is_monotone(name in bench_name(), seed in 0u64..1000) {
        let mut cfg = MachineConfig::paper_baseline(1);
        cfg.insts_target = 15_000;
        cfg.seed = seed;
        let profile = tracegen::benchmark(name).unwrap();
        let mut sys = System::from_profiles(&cfg, &[profile], PolicyKind::Nru, None, seed);
        let r = sys.run();
        let c = &r.cores[0];
        prop_assert!(c.l2_misses <= c.l2_accesses);
        prop_assert!(c.l2_accesses <= c.l1d_misses + c.l1i_misses);
        prop_assert!(c.ipc > 0.0);
    }

    /// Doubling the instruction target cannot shrink total cycles.
    #[test]
    fn longer_runs_take_longer(name in bench_name()) {
        let profile = tracegen::benchmark(name).unwrap();
        let run = |insts: u64| {
            let mut cfg = MachineConfig::paper_baseline(1);
            cfg.insts_target = insts;
            let mut sys =
                System::from_profiles(&cfg, std::slice::from_ref(&profile), PolicyKind::Lru, None, 3);
            sys.run().cores[0].cycles
        };
        prop_assert!(run(24_000) >= run(12_000));
    }

    /// Adding a co-runner cannot improve a thread's IPC (no constructive
    /// interference exists in this machine model).
    #[test]
    fn co_runners_never_help(victim in bench_name(), aggressor in bench_name()) {
        let mut cfg1 = MachineConfig::paper_baseline(1);
        cfg1.insts_target = 30_000;
        let v = tracegen::benchmark(victim).unwrap();
        let a = tracegen::benchmark(aggressor).unwrap();
        let solo = System::from_profiles(&cfg1, std::slice::from_ref(&v), PolicyKind::Lru, None, 5)
            .run()
            .ipc(0);
        let mut cfg2 = MachineConfig::paper_baseline(2);
        cfg2.insts_target = 30_000;
        let shared = System::from_profiles(&cfg2, &[v, a], PolicyKind::Lru, None, 5)
            .run()
            .ipc(0);
        prop_assert!(
            shared <= solo * 1.03,
            "{victim} IPC improved next to {aggressor}: {shared} vs {solo}"
        );
    }
}
